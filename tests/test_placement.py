"""Placement subsystem: paper no-op guarantee, policy invariants, serde.

The load-bearing properties:

* **paper is a strict no-op** — on every plan-population shape, a run
  with the default ``paper`` policy is *byte-identical* to a coordinator
  built with no placement wiring at all, and its summary carries no
  ``placement`` digest key (the pre-placement determinism baselines
  cannot move);
* **membership safety** — on an elastic timeline, every placed home is
  a subset of the nodes the admission-time plan was resolved for
  (current, non-draining members only);
* **accounting** — placement decisions are recorded exactly once per
  admitted query, so the per-policy counters sum to the admission count;
* **home-rewrite legality** — rewrites only ever *narrow* join homes,
  keep build/probe pairs co-located and never touch a scan (the
  ``validate_homes`` contract re-checked by the plan constructor);
* **spec safety** — an unknown scheduler or knob fails at spec load
  with a dotted-path :class:`~repro.api.serde.SpecError`, not at run
  time, and every placement spec round-trips losslessly through JSON.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.api import ScenarioSpec, SpecError, replace_path, run as run_scenario
from repro.api.spec import PlanSpec
from repro.engine.params import ExecutionParams
from repro.optimizer.operator_tree import OpKind
from repro.placement import (
    ClusterView,
    PlacementSpec,
    available_policies,
    get_policy,
    place_plan,
)
from repro.placement.base import rewrite_homes
from repro.serving import MemoryLogger, WorkloadDriver, WorkloadSpec, read_events
from repro.serving.driver import AdmissionPolicy, ArrivalSpec
from repro.serving.trace import QueryPlaced, decode_event, encode_event
from repro.sim import MachineConfig

SCENARIO_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples" / "scenarios"

#: every plan-population shape the spec layer can build, on a machine
#: that satisfies its constraints (two_node demands exactly 2 nodes).
SHAPES = (
    ("pipeline_chain", MachineConfig(nodes=2, processors_per_node=2),
     PlanSpec(kind="pipeline_chain", base_tuples=1000, chain_joins=3)),
    ("two_node", MachineConfig(nodes=2, processors_per_node=2),
     PlanSpec(kind="two_node", r_tuples=1000, s_tuples=2000)),
    ("io_heavy", MachineConfig(nodes=4, processors_per_node=2),
     PlanSpec(kind="io_heavy", base_tuples=2000)),
    ("workload_mix", MachineConfig(nodes=4, processors_per_node=2),
     PlanSpec(kind="workload_mix", plan_count=3, workload_queries=3,
              scale=0.005)),
)

SMART_POLICIES = ("round_robin", "load_aware", "location_aware",
                  "transfer_aware", "threshold_local")


def summary_bytes(metrics):
    return json.dumps(metrics.summary(), sort_keys=True)


def serving_spec(**overrides):
    base = dict(
        queries=6,
        arrival=ArrivalSpec(kind="closed", population=3),
        policy=AdmissionPolicy(max_multiprogramming=3),
        seed=11,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


# -- the paper no-op guarantee ----------------------------------------------


class TestPaperIsNoOp:
    @pytest.mark.parametrize("name,config,plan_spec", SHAPES,
                             ids=[s[0] for s in SHAPES])
    def test_byte_identical_to_unwired_coordinator(self, name, config,
                                                   plan_spec):
        plans = plan_spec.build(config)
        spec = serving_spec()
        assert spec.placement.scheduler == "paper"
        with_paper = WorkloadDriver(list(plans), config, spec).run().metrics
        legacy_spec = dataclasses.replace(spec, placement=None)
        legacy = WorkloadDriver(list(plans), config, legacy_spec).run().metrics
        assert summary_bytes(with_paper) == summary_bytes(legacy)

    def test_paper_summary_has_no_placement_key(self):
        _name, config, plan_spec = SHAPES[0]
        metrics = WorkloadDriver(
            list(plan_spec.build(config)), config, serving_spec()
        ).run().metrics
        assert "placement" not in metrics.summary()

    def test_paper_policy_choose_is_none(self):
        assert get_policy("paper").choose(None, 0, PlacementSpec(), None) is None


# -- policy invariants -------------------------------------------------------


class TestPolicyInvariants:
    def test_registry_roster(self):
        assert available_policies() == tuple(sorted(
            ("paper",) + SMART_POLICIES
        ))

    def test_unknown_policy_raises_with_roster(self):
        with pytest.raises(KeyError, match="round_robin"):
            get_policy("definitely_not_a_policy")

    @pytest.mark.parametrize("policy", SMART_POLICIES)
    def test_counters_sum_to_admitted(self, policy):
        _name, config, plan_spec = SHAPES[3]
        logger = MemoryLogger()
        metrics = WorkloadDriver(
            list(plan_spec.build(config)), config,
            serving_spec(placement=PlacementSpec(scheduler=policy, width=2)),
            logger=logger,
        ).run().metrics
        admitted = sum(1 for e in logger.events
                       if type(e).kind == "query_admitted")
        assert sum(metrics.placements.values()) == admitted == 6
        assert set(metrics.placements) == {policy}
        assert 0 <= metrics.placements_changed <= admitted
        summary = metrics.summary()
        assert summary["placement"]["policies"] == {policy: admitted}

    @pytest.mark.parametrize("policy", SMART_POLICIES)
    def test_placed_homes_stay_legal(self, policy):
        # The plan constructor re-runs validate_tree/validate_homes on
        # every rewrite, so a completed run with rewrites is itself the
        # legality proof; assert rewrites actually happened for the
        # policies that narrow (width < nodes).
        _name, config, plan_spec = SHAPES[2]
        metrics = WorkloadDriver(
            list(plan_spec.build(config)), config,
            serving_spec(placement=PlacementSpec(scheduler=policy, width=2)),
        ).run().metrics
        assert metrics.completed == 6
        assert sum(metrics.placements.values()) == 6

    def test_streaming_metrics_carry_placement_digest(self):
        from repro.engine.metrics import StreamingWorkloadMetrics

        _name, config, plan_spec = SHAPES[3]
        metrics = WorkloadDriver(
            list(plan_spec.build(config)), config,
            serving_spec(placement=PlacementSpec(scheduler="load_aware",
                                                 width=2)),
            metrics=StreamingWorkloadMetrics(),
        ).run().metrics
        summary = metrics.summary()
        assert summary["placement"]["policies"] == {"load_aware": 6}

    def test_elastic_placements_use_only_current_members(self, tmp_path):
        text = (SCENARIO_DIR / "elastic_surge.json").read_text()
        spec = ScenarioSpec.from_json(text)
        spec = replace_path(spec, "workload.placement.scheduler",
                            "round_robin")
        spec = replace_path(spec, "workload.placement.width", 2)
        record = tmp_path / "placed.jsonl"
        run_scenario(spec, record=record)
        events = list(read_events(record))
        placed = [e for e in events if type(e).kind == "query_placed"]
        assert placed, "elastic run placed no queries"
        active = spec.cluster.initial_nodes
        for event in events:
            kind = type(event).kind
            if kind in ("node_joined", "node_draining"):
                active = event.active_nodes
            elif kind == "query_placed":
                assert set(event.nodes) <= set(range(active)), (
                    f"query {event.query_id} placed on {event.nodes} with "
                    f"only {active} planned members"
                )


# -- home-rewrite legality ---------------------------------------------------


class TestRewriteHomes:
    def plan(self):
        _name, config, plan_spec = SHAPES[2]
        return plan_spec.build(config)[0], config

    def test_narrows_build_and_probe_together(self):
        plan, _config = self.plan()
        placed, changed = rewrite_homes(plan, (0, 1))
        assert changed
        tree = plan.operators
        for op in tree:
            if op.kind is OpKind.BUILD:
                probe_id = tree.probe_of(op.op_id)
                assert placed.homes[op.op_id] == placed.homes[probe_id]
                assert set(placed.homes[op.op_id]) <= set(plan.homes[op.op_id])

    def test_scan_homes_untouched(self):
        plan, _config = self.plan()
        placed, _changed = rewrite_homes(plan, (0,))
        for op in plan.operators:
            if op.kind is OpKind.SCAN:
                assert placed.homes[op.op_id] == plan.homes[op.op_id]

    def test_disjoint_target_keeps_original_home(self):
        plan, _config = self.plan()
        placed, changed = rewrite_homes(plan, (99,))
        assert not changed and placed is plan

    def test_decision_recorded_even_when_unchanged(self):
        plan, config = self.plan()
        view = ClusterView(
            planning_nodes=tuple(range(config.nodes)),
            node_load=lambda _n: 0, admitted=0,
            params=ExecutionParams(), config=config,
        )
        spec = PlacementSpec(scheduler="load_aware", width=0)  # full width
        placed, decision = place_plan(
            plan, get_policy("load_aware"), spec, view, query_id=0
        )
        assert decision is not None and not decision.changed
        assert placed is plan


# -- spec safety -------------------------------------------------------------


class TestPlacementSpecSerde:
    @pytest.mark.parametrize("policy", ("paper",) + SMART_POLICIES)
    def test_round_trips_losslessly(self, policy):
        spec = replace_path(ScenarioSpec(), "workload.placement",
                            PlacementSpec(scheduler=policy, width=3,
                                          threshold=7))
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def _quickstart_dict(self):
        return json.loads((SCENARIO_DIR / "quickstart.json").read_text())

    def test_unknown_scheduler_is_dotted_path_spec_error(self):
        data = self._quickstart_dict()
        data["workload"]["placement"]["scheduler"] = "bogus"
        with pytest.raises(SpecError, match=r"\$\.workload\.placement"):
            ScenarioSpec.from_dict(data)

    def test_unknown_knob_is_dotted_path_spec_error(self):
        data = self._quickstart_dict()
        data["workload"]["placement"]["widthh"] = 3
        with pytest.raises(SpecError, match=r"\$\.workload\.placement"):
            ScenarioSpec.from_dict(data)

    def test_negative_width_rejected_at_load(self):
        data = self._quickstart_dict()
        data["workload"]["placement"]["width"] = -1
        with pytest.raises(SpecError, match=r"\$\.workload\.placement"):
            ScenarioSpec.from_dict(data)

    def test_unknown_scheduler_rejected_at_construction(self):
        with pytest.raises(ValueError, match="bogus"):
            PlacementSpec(scheduler="bogus")

    def test_scheduler_is_directly_sweepable(self):
        spec = replace_path(ScenarioSpec(), "workload.placement.scheduler",
                            "load_aware")
        assert spec.workload.placement.scheduler == "load_aware"
        assert spec.workload.placement.active

    def test_example_placement_sweep_is_canonical(self):
        text = (SCENARIO_DIR / "placement_sweep.json").read_text()
        spec = ScenarioSpec.from_json(text)
        assert spec.workload.placement.active
        assert spec.to_json() == text


# -- trace event codec -------------------------------------------------------


class TestQueryPlacedCodec:
    def test_round_trips_with_tuple_nodes(self):
        event = QueryPlaced(time=1.5, query_id=3, policy="load_aware",
                            nodes=(0, 2), bytes_avoided=123)
        decoded = decode_event(json.loads(json.dumps(encode_event(event))))
        assert decoded == event
        assert isinstance(decoded.nodes, tuple)


# -- experiment CLI ----------------------------------------------------------


class TestExperimentsList:
    def test_list_flag_prints_registry(self, capsys):
        from repro.experiments import runner

        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == len(runner.EXPERIMENTS)
        by_name = dict(line.split(": ", 1) for line in lines)
        assert set(by_name) == set(runner.EXPERIMENTS)
        assert "placement" in by_name

"""Shared test configuration: fixed hypothesis profiles.

Two profiles:

* ``dev`` (default) — hypothesis's usual randomized exploration, with
  deadlines off (simulation runs have legitimate long tails);
* ``ci`` — fully derandomized: examples are derived from the test
  structure only, so CI runs are reproducible byte-for-byte.  Selected
  with ``HYPOTHESIS_PROFILE=ci`` (the GitHub Actions workflow and
  ``make check`` do this).
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

"""Service classes, overload handling and cross-query stealing.

The serving-side contract of the machine-scheduler layer:

* per-class admission gates (class MPL caps, priority bypass of a
  blocked lower-priority head-of-line query) hold under load;
* open-loop overload handling (queue timeouts, deadline shedding)
  resolves every query — completed or shed — instead of queueing without
  bound, and the per-class metrics account for both;
* the CPU disciplines differentiate the classes end to end: under
  priority-preemptive scheduling the interactive class's p95 latency
  beats FIFO's at MPL 8 while batch throughput stays within 20%;
* cross-query machine-share stealing strictly reduces makespan in the
  skewed stress scenario (one large skewed query co-resident with small
  queries), and never moves an activation outside the paper's
  five-condition protocol (audited by the in-situ legality tests).
"""

import dataclasses

import pytest

from repro.catalog import Relation, SkewSpec
from repro.engine import ExecutionParams
from repro.experiments.config import scaled_execution_params
from repro.optimizer import BaseNode, JoinNode, compile_plan
from repro.query import JoinEdge, QueryGraph
from repro.serving import (
    BATCH,
    INTERACTIVE,
    AdmissionPolicy,
    ArrivalSpec,
    MultiQueryCoordinator,
    ServiceClass,
    WorkloadDriver,
    WorkloadSpec,
)
from repro.sim import MachineConfig
from repro.workloads import pipeline_chain_scenario


def join_plan(config, r=600, s=1200, label="classy"):
    sel = 1.0 / r
    graph = QueryGraph(
        [Relation("R", r), Relation("S", s)], [JoinEdge("R", "S", sel)]
    )
    tree = JoinNode(BaseNode(graph.relation("R")), BaseNode(graph.relation("S")),
                    sel)
    return compile_plan(graph, tree, config, label=label)


# ---------------------------------------------------------------------------
# Service-class admission gates
# ---------------------------------------------------------------------------

class TestPerClassAdmission:
    def test_class_mpl_cap_never_exceeded(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = join_plan(config)
        capped = ServiceClass("capped", max_multiprogramming=2)
        spec = WorkloadSpec(
            queries=10,
            arrival=ArrivalSpec(kind="poisson", rate=2000.0),
            policy=AdmissionPolicy(max_multiprogramming=8),
            classes=((capped, 1.0),),
            seed=3,
        )
        driver = WorkloadDriver(plan, config, spec)
        coordinator = driver.build_coordinator()
        metrics = coordinator.run()
        assert metrics.completed == 10
        assert coordinator.peak_running_by_class["capped"] <= 2

    def test_priority_class_bypasses_blocked_lower_priority_head(self):
        # Batch floods the queue first; an interactive query arriving
        # later must be admitted ahead of the queued batch work.
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = join_plan(config)
        batch = dataclasses.replace(BATCH, max_multiprogramming=1)
        coordinator = MultiQueryCoordinator(
            config, policy=AdmissionPolicy(max_multiprogramming=4)
        )
        env = coordinator.env
        requests = {}

        def submit():
            for i in range(3):
                requests[f"b{i}"] = coordinator.submit(
                    plan, service_class=batch, query_id=i
                )
            yield env.timeout(1e-4)
            requests["i0"] = coordinator.submit(
                plan, service_class=INTERACTIVE, query_id=10
            )
            coordinator.close_arrivals()

        env.process(submit(), name="submit")
        metrics = coordinator.run()
        assert metrics.completed == 4
        # The interactive query started before the 2nd and 3rd batch
        # queries even though it arrived after them.
        assert (requests["i0"].start_time
                < requests["b1"].completion.start_time)
        assert (requests["i0"].start_time
                < requests["b2"].completion.start_time)

    def test_sp_queries_carry_their_service_class(self):
        # SP workers charge the shared processors too: under the fair
        # discipline a weight-4 SP query must out-run a weight-1 one
        # that shares the machine, and the completions carry the class.
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = join_plan(config, r=1500, s=3000)
        params = ExecutionParams(cpu_discipline="fair")
        heavy = ServiceClass("heavy", weight=8.0)
        light = ServiceClass("light", weight=1.0)
        coordinator = MultiQueryCoordinator(
            config, params=params,
            policy=AdmissionPolicy(max_multiprogramming=4),
        )

        def submit():
            coordinator.submit(plan, strategy="SP", service_class=heavy,
                               query_id=0)
            coordinator.submit(plan, strategy="SP", service_class=light,
                               query_id=1)
            coordinator.close_arrivals()
            return
            yield  # pragma: no cover - generator marker

        coordinator.env.process(submit(), name="submit")
        metrics = coordinator.run()
        assert metrics.completed == 2
        by_class = {c.service_class: c for c in metrics.completions}
        assert set(by_class) == {"heavy", "light"}
        assert (by_class["heavy"].completion_time
                < by_class["light"].completion_time)

    def test_per_query_discipline_override_is_rejected(self):
        # The discipline is machine-wide (processors are built once);
        # a per-query override would be silently ignored, so it errors.
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = join_plan(config)
        coordinator = MultiQueryCoordinator(config)  # fifo substrate
        with pytest.raises(ValueError):
            coordinator.submit(
                plan, params=ExecutionParams(cpu_discipline="priority")
            )

    def test_single_class_workload_is_plain_fifo(self):
        # With one class the scheduler must preserve head-of-line order.
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = join_plan(config)
        spec = WorkloadSpec(
            queries=8,
            arrival=ArrivalSpec(kind="poisson", rate=5000.0),
            policy=AdmissionPolicy(max_multiprogramming=1),
            seed=7,
        )
        metrics = WorkloadDriver(plan, config, spec).run().metrics
        starts = [c.start_time for c in sorted(metrics.completions,
                                               key=lambda c: c.query_id)]
        assert starts == sorted(starts)


# ---------------------------------------------------------------------------
# Overload handling: queue timeouts + deadline shedding
# ---------------------------------------------------------------------------

class TestOverloadHandling:
    def overloaded_spec(self, classes, policy, queries=12, seed=11):
        return WorkloadSpec(
            queries=queries,
            arrival=ArrivalSpec(kind="bursty", rate=400.0, burst_size=12),
            policy=policy,
            classes=classes,
            seed=seed,
        )

    def test_queue_timeout_sheds_instead_of_queueing_forever(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = join_plan(config, r=1500, s=3000)
        impatient = ServiceClass("impatient", queue_timeout=0.05)
        spec = self.overloaded_spec(
            ((impatient, 1.0),),
            AdmissionPolicy(max_multiprogramming=1),
        )
        metrics = WorkloadDriver(plan, config, spec).run().metrics
        assert metrics.shed_count > 0
        assert metrics.completed + metrics.shed_count == 12
        for record in metrics.shed:
            assert record.reason == "queue_timeout"
            assert record.queued_for >= 0.05 - 1e-9
        # Shed queries resolved their done event with None (clients see
        # the rejection, not a hang) and never started executing.
        shed_ids = {record.query_id for record in metrics.shed}
        assert shed_ids.isdisjoint(c.query_id for c in metrics.completions)

    def test_deadline_shedding_uses_the_class_slo(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = join_plan(config, r=1500, s=3000)
        slo = ServiceClass("tight", latency_slo=0.06)
        spec = self.overloaded_spec(
            ((slo, 1.0),),
            AdmissionPolicy(max_multiprogramming=1, deadline_shedding=True),
        )
        metrics = WorkloadDriver(plan, config, spec).run().metrics
        assert metrics.shed_count > 0
        assert all(r.reason == "deadline" for r in metrics.shed)
        # Attainment counts the shed queries as misses.
        assert metrics.slo_attainment("tight") < 1.0

    def test_no_overload_policy_means_no_shedding(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = join_plan(config, r=1500, s=3000)
        spec = self.overloaded_spec(
            (), AdmissionPolicy(max_multiprogramming=1),
        )
        metrics = WorkloadDriver(plan, config, spec).run().metrics
        assert metrics.shed_count == 0
        assert metrics.completed == 12

    def test_per_class_metrics_split_the_run(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = join_plan(config)
        inter = dataclasses.replace(INTERACTIVE, latency_slo=5.0)
        spec = WorkloadSpec(
            queries=10,
            arrival=ArrivalSpec(kind="closed", population=4),
            policy=AdmissionPolicy(max_multiprogramming=4),
            classes=((inter, 1.0), (BATCH, 1.0)),
            seed=5,
        )
        metrics = WorkloadDriver(plan, config, spec).run().metrics
        names = metrics.class_names()
        assert set(names) <= {"interactive", "batch"}
        assert sum(len(metrics.completions_of(n)) for n in names) == 10
        per_class = metrics.per_class_summary()
        for name in names:
            assert per_class[name]["completed"] == len(
                metrics.completions_of(name)
            )
        # A generous SLO is attained; batch (no SLO, nothing shed) is 1.0.
        if "interactive" in names:
            assert metrics.slo_attainment("interactive") == 1.0
        if "batch" in names:
            assert metrics.slo_attainment("batch") == 1.0


# ---------------------------------------------------------------------------
# Disciplines end to end: the acceptance ordering
# ---------------------------------------------------------------------------

class TestDisciplineDifferentiation:
    def run_mixed(self, discipline, mpl=8, seed=5):
        plan, config = pipeline_chain_scenario(
            nodes=2, processors_per_node=4, base_tuples=2000,
        )
        params = scaled_execution_params(
            skew=SkewSpec.uniform_redistribution(0.8), seed=seed,
            cpu_discipline=discipline,
        )
        inter = dataclasses.replace(INTERACTIVE, latency_slo=0.3)
        spec = WorkloadSpec(
            queries=18,
            arrival=ArrivalSpec(kind="closed", population=mpl),
            policy=AdmissionPolicy(max_multiprogramming=mpl),
            classes=((inter, 1.0), (BATCH, 2.0)),
            seed=seed,
        )
        return WorkloadDriver(plan, config, spec, params).run().metrics

    def test_priority_preemption_improves_interactive_p95_at_mpl8(self):
        fifo = self.run_mixed("fifo")
        prio = self.run_mixed("priority")
        assert (prio.class_latency_percentile("interactive", 95.0)
                < fifo.class_latency_percentile("interactive", 95.0))
        # Batch pays, but bounded: throughput within 20% of FIFO's.
        assert (prio.class_throughput("batch")
                >= 0.8 * fifo.class_throughput("batch"))

    def test_fair_share_improves_interactive_p95_at_mpl8(self):
        fifo = self.run_mixed("fifo")
        fair = self.run_mixed("fair")
        assert (fair.class_latency_percentile("interactive", 95.0)
                < fifo.class_latency_percentile("interactive", 95.0))

    @pytest.mark.parametrize("discipline", ["fifo", "fair", "priority"])
    def test_every_discipline_is_deterministic(self, discipline):
        a = self.run_mixed(discipline, seed=9)
        b = self.run_mixed(discipline, seed=9)
        assert repr(a.summary()) == repr(b.summary())

    @pytest.mark.parametrize("discipline", ["fair", "priority"])
    def test_disciplines_conserve_work(self, discipline):
        metrics = self.run_mixed(discipline, mpl=4)
        for completion in metrics.completions:
            m = completion.result.metrics
            assert m.activations_processed == (
                m.trigger_activations + m.data_activations
            )


# ---------------------------------------------------------------------------
# Cross-query machine-share stealing
# ---------------------------------------------------------------------------

def skewed_stress_scenario(cross_query_steal, seed=2, smalls=4, gap=0.01):
    """One large heavily-skewed query co-resident with small queries that
    leave machine share idle — the broker's showcase."""
    config = MachineConfig(nodes=2, processors_per_node=2)
    big = join_plan(config, 4000, 8000, "big")
    small = join_plan(config, 400, 800, "small")
    big_params = scaled_execution_params(
        skew=SkewSpec.uniform_redistribution(1.0), seed=seed,
        cross_query_steal=cross_query_steal,
    )
    coordinator = MultiQueryCoordinator(
        config, params=big_params,
        policy=AdmissionPolicy(max_multiprogramming=8),
    )
    env = coordinator.env

    def submit():
        coordinator.submit(big, params=big_params)
        for i in range(smalls):
            yield env.timeout(gap)
            coordinator.submit(small, params=scaled_execution_params(
                seed=100 + seed * 10 + i,
                cross_query_steal=cross_query_steal,
            ))
        coordinator.close_arrivals()

    env.process(submit(), name="submit")
    return coordinator.run()


class TestCrossQuerySteal:
    def test_strictly_reduces_makespan_in_the_skewed_stress_scenario(self):
        on = skewed_stress_scenario(True)
        off = skewed_stress_scenario(False)
        assert on.total_cross_steal_rounds() > 0
        assert off.total_cross_steal_rounds() == 0
        assert on.makespan < off.makespan

    def test_broker_counts_are_reported(self):
        metrics = skewed_stress_scenario(True)
        assert metrics.broker_notifications > 0
        assert metrics.summary()["cross_steal_rounds"] == \
               metrics.total_cross_steal_rounds()

    def test_disabled_broker_never_fires(self):
        metrics = skewed_stress_scenario(False)
        assert metrics.broker_notifications == 0
        assert metrics.total_cross_steal_rounds() == 0

    def test_single_query_runs_are_untouched_by_the_broker(self):
        # A lone query on the machine: the broker has no co-resident
        # context, so enabling it cannot change anything.
        from repro.engine import QueryExecutor
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = join_plan(config, 1500, 3000)
        results = []
        for steal in (True, False):
            params = ExecutionParams(
                skew=SkewSpec.uniform_redistribution(0.8), seed=3,
                cross_query_steal=steal,
            )
            result = QueryExecutor(plan, config, params=params).run()
            results.append((result.response_time,
                            result.metrics.steal_rounds,
                            result.metrics.cross_steal_rounds))
        assert results[0] == results[1]
        assert results[0][2] == 0

    def test_cross_steals_pass_the_five_conditions_audit(self, monkeypatch):
        """Every offer made during a broker-heavy run still satisfies the
        paper's conditions — the broker changes who asks, never what may
        move."""
        from repro.engine.scheduler import NodeScheduler
        from repro.optimizer.operator_tree import OpKind

        original = NodeScheduler._best_candidate
        audited = {"offers": 0}

        def checked(self, requester, scope, free_memory, cached):
            candidate = original(self, requester, scope, free_memory, cached)
            if candidate is not None:
                audited["offers"] += 1
                runtime = self.context.ops[candidate.op_id]
                assert runtime.kind is OpKind.PROBE
                assert not runtime.blocked and not runtime.terminated
                assert requester in runtime.home
                assert candidate.overhead <= free_memory
            return candidate

        monkeypatch.setattr(NodeScheduler, "_best_candidate", checked)
        metrics = skewed_stress_scenario(True)
        assert metrics.total_cross_steal_rounds() > 0
        assert audited["offers"] > 0

"""Property tests for the hybrid kernel (PR 7).

Three families of guarantees:

* **analytic == discrete**: the FIFO fast-forward path produces the
  bit-identical completion trajectory, waits, wait_time and busy_time of
  the discrete event-per-charge path on arbitrary charge streams — and
  the fast-forward flag is a structural no-op under fair/priority (those
  disciplines keep their discrete queued service either way);
* **backends are interchangeable**: the calendar event queue orders
  entries exactly like the binary heap, and the integer-tick clock keeps
  hybrid and discrete bit-identical on the quantized grid too;
* **the heap does not leak**: lazily-cancelled entries (priority
  preemption storms) are eagerly purged once they dominate the queue.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import (ChargeTag, Environment, Resource,
                            SimulationError, make_discipline)
from repro.sim.eventq import CalendarQueue


def run_stream(charges, capacity, *, fast_forward, discipline=None,
               tick=None, queue="heap", use_until_every=0):
    """Run ``charges`` = [(start_delay, duration, key, weight, priority)]
    through one resource; return (trajectory, stats tuple)."""
    env = Environment(tick=tick, queue=queue)
    resource = Resource(
        env, capacity=capacity, name="r",
        discipline=make_discipline(discipline) if discipline else None,
        fast_forward=fast_forward,
    )
    done = []

    def proc(index, start, duration, tag):
        if start > 0:
            yield env.timeout(start)
        if use_until_every and index % use_until_every == 0:
            yield from resource.use_until(duration, tag, env.now + duration)
        else:
            yield from resource.use(duration, tag)
        done.append((index, env.now))

    for index, (start, duration, key, weight, priority) in enumerate(charges):
        tag = ChargeTag(key=key, weight=weight, priority=priority)
        env.process(proc(index, start, duration, tag))
    env.run()
    stats = (resource.waits, resource.wait_time, resource.busy_time, env.now)
    return done, stats


charge_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.02),   # start delay
        st.floats(min_value=0.0, max_value=0.01),   # duration (0 allowed)
        st.sampled_from(["a", "b", "c"]),           # class key
        st.floats(min_value=0.25, max_value=8.0),   # weight
        st.integers(min_value=0, max_value=3),      # priority
    ),
    min_size=1, max_size=30,
)


class TestAnalyticEqualsDiscrete:
    @given(charges=charge_lists, capacity=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_property_fifo_fast_forward_bit_identical(self, charges, capacity):
        """FIFO: the analytic path's trajectory and stats are bitwise
        equal to the discrete path's, contended or not."""
        discrete = run_stream(charges, capacity, fast_forward=False)
        hybrid = run_stream(charges, capacity, fast_forward=True)
        assert repr(discrete) == repr(hybrid)

    @given(charges=charge_lists, capacity=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_property_use_until_fast_forward_bit_identical(self, charges,
                                                           capacity):
        """The generalized ``use_until`` (macro-charge flush) fast-forward
        matches the discrete path too, mixed into a regular stream."""
        discrete = run_stream(charges, capacity, fast_forward=False,
                              use_until_every=3)
        hybrid = run_stream(charges, capacity, fast_forward=True,
                            use_until_every=3)
        assert repr(discrete) == repr(hybrid)

    @pytest.mark.parametrize("discipline", ["fair", "priority"])
    @given(charges=charge_lists)
    @settings(max_examples=20, deadline=None)
    def test_property_fair_priority_flag_is_structural_noop(self, discipline,
                                                            charges):
        """fair/priority cannot precompute queued grants (future arrivals
        legally reorder them), so the flag must leave their discrete
        service untouched — trajectories identical with it on or off."""
        off = run_stream(charges, 2, fast_forward=False,
                         discipline=discipline)
        on = run_stream(charges, 2, fast_forward=True, discipline=discipline)
        assert repr(off) == repr(on)

    @given(charges=charge_lists, capacity=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_tick_clock_keeps_kernels_bit_identical(self, charges,
                                                             capacity):
        """On the quantized grid, fast-forward horizons stay on-grid, so
        hybrid == discrete holds bitwise under the tick clock too."""
        discrete = run_stream(charges, capacity, fast_forward=False,
                              tick=1e-7)
        hybrid = run_stream(charges, capacity, fast_forward=True, tick=1e-7)
        assert repr(discrete) == repr(hybrid)

    @given(charges=charge_lists, capacity=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_calendar_queue_backend_bit_identical(self, charges,
                                                           capacity):
        """The calendar backend is ordering-identical to the heap, under
        both kernels."""
        for ff in (False, True):
            heap = run_stream(charges, capacity, fast_forward=ff)
            calendar = run_stream(charges, capacity, fast_forward=ff,
                                  queue="calendar")
            assert repr(heap) == repr(calendar)


class TestFastForwardResource:
    def test_in_use_counts_busy_horizons(self):
        env = Environment()
        resource = Resource(env, capacity=2, fast_forward=True)

        def charge(duration):
            yield from resource.use(duration, None)

        env.process(charge(2.0))
        env.process(charge(5.0))
        env.process(charge(1.0))  # queued behind the first two

        env.run(until=1.0)
        assert resource.in_use == 2
        env.run(until=4.0)  # first done at 2.0, third runs 2.0..3.0
        assert resource.in_use == 1
        env.run()
        assert resource.in_use == 0
        assert resource.waits == 1

    def test_acquire_release_refused_under_fast_forward(self):
        env = Environment()
        resource = Resource(env, capacity=1, fast_forward=True)
        with pytest.raises(SimulationError):
            list(resource.acquire())  # generator: raises on first step
        with pytest.raises(SimulationError):
            resource.release()

    def test_flag_requires_fifo_discipline(self):
        env = Environment()
        fair = Resource(env, capacity=1,
                        discipline=make_discipline("fair"),
                        fast_forward=True)
        assert fair.fast_forward is False
        fifo = Resource(env, capacity=1, fast_forward=True)
        assert fifo.fast_forward is True
        assert fifo.discipline.name == "fifo"


class TestTickClock:
    def test_instants_quantized_to_grid(self):
        env = Environment(tick=0.5)
        log = []

        def proc():
            yield env.timeout(0.6)   # rounds to 0.5
            log.append(env.now)
            yield env.timeout(0.76)  # 0.5 + 0.76 = 1.26 rounds to 1.5
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [0.5, 1.5]

    def test_invalid_tick_rejected(self):
        with pytest.raises(SimulationError):
            Environment(tick=0.0)
        with pytest.raises(SimulationError):
            Environment(tick=-1.0)

    def test_invalid_queue_rejected(self):
        with pytest.raises(SimulationError):
            Environment(queue="splay")


class TestCalendarQueue:
    @given(times=st.lists(st.floats(min_value=0.0, max_value=10.0),
                          min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_pop_order_matches_heapq(self, times):
        import heapq
        entries = [(t, 1, seq, None) for seq, t in enumerate(times)]
        cal = CalendarQueue()
        for entry in entries:
            cal.push(entry)
        heap = list(entries)
        heapq.heapify(heap)
        popped = []
        while cal:
            assert cal[0] == heap[0]
            popped.append(cal.pop())
            heapq.heappop(heap)
        assert popped == sorted(entries)

    def test_interleaved_push_pop_with_resizes(self):
        rng = random.Random(42)
        cal = CalendarQueue(bucket_width=1e-3, buckets=8)
        mirror = []
        import heapq
        seq = 0
        for _ in range(2000):
            if mirror and rng.random() < 0.45:
                assert cal.pop() == heapq.heappop(mirror)
            else:
                entry = (rng.random() * rng.choice([1e-4, 1.0, 100.0]),
                         rng.randint(0, 2), seq, None)
                seq += 1
                cal.push(entry)
                heapq.heappush(mirror, entry)
        while mirror:
            assert cal.pop() == heapq.heappop(mirror)
        assert not cal

    def test_purge_removes_only_dead_entries(self):
        cal = CalendarQueue()
        for seq in range(100):
            cal.push((seq * 0.1, 1, seq, seq))
        removed = cal.purge(lambda payload: payload % 2 == 0)
        assert removed == 50
        assert len(cal) == 50
        assert [cal.pop()[3] for _ in range(50)] == list(range(1, 100, 2))


class TestLazyDeletionPurge:
    def test_discard_purges_when_dead_dominate(self):
        env = Environment()
        events = [env.timeout(float(i + 1)) for i in range(500)]
        assert len(env._heap) == 500
        for event in events[:400]:
            event.callbacks = []
            env.discard(event)
        # The purge triggers whenever dead entries pass the fixed floor
        # AND dominate the queue, so the heap can never hold more than
        # live + max(64, live) entries (here: 100 live).
        assert len(env._heap) <= 200
        # All 100 live events are still there.
        live = [e for e in env._heap if not getattr(e[3], "_cancelled", False)]
        assert len(live) == 100

    def test_preemption_storm_keeps_heap_bounded(self):
        """The regression the purge fixes: a long-running victim preempted
        over and over leaves one cancelled far-future segment timeout per
        preemption — unbounded growth within one busy period before the
        purge, bounded now."""
        env = Environment()
        resource = Resource(env, capacity=1,
                            discipline=make_discipline("priority"))
        peak = [0]

        def victim():
            tag = ChargeTag(key="batch", weight=1.0, priority=0)
            yield from resource.use(1000.0, tag)

        def interactive():
            tag = ChargeTag(key="slo", weight=1.0, priority=9)
            for _ in range(600):
                yield env.timeout(0.01)
                yield from resource.use(1e-4, tag)
                peak[0] = max(peak[0], len(env._heap))

        env.process(victim())
        env.process(interactive())
        env.run()
        assert resource.preemptions >= 600
        # Each preemption lazily cancels the victim's far-future segment
        # timeout; without the purge those ~600 dead entries pile up in
        # one busy period.  With it, dead entries can never exceed
        # max(64, live) and live events here are a handful.
        assert peak[0] < 150


class TestServingHybridEquivalence:
    def test_workload_summary_identical_and_streaming_matches(self):
        """Serving-level gate: a mixed multi-query workload produces the
        identical ``WorkloadMetrics.summary()`` under the hybrid kernel,
        and ``StreamingWorkloadMetrics`` reports the same digest without
        retaining per-query results."""
        import dataclasses

        from repro.catalog import SkewSpec
        from repro.engine import ExecutionParams
        from repro.engine.metrics import StreamingWorkloadMetrics
        from repro.serving import (AdmissionPolicy, ArrivalSpec,
                                   WorkloadDriver, WorkloadSpec)
        from repro.workloads import pipeline_chain_scenario

        plan, config = pipeline_chain_scenario(
            nodes=2, processors_per_node=2, base_tuples=600,
        )
        spec = WorkloadSpec(
            queries=8,
            arrival=ArrivalSpec(kind="poisson", rate=40.0),
            strategy="DP",
            policy=AdmissionPolicy(max_multiprogramming=4),
            seed=11,
        )
        params = ExecutionParams(
            skew=SkewSpec.uniform_redistribution(0.8), seed=11
        )
        event = WorkloadDriver(plan, config, spec, params).run().metrics
        hybrid_params = dataclasses.replace(params, kernel="hybrid")
        hybrid = WorkloadDriver(plan, config, spec,
                                hybrid_params).run().metrics
        assert repr(event.summary()) == repr(hybrid.summary())

        streaming_sink = StreamingWorkloadMetrics()
        streaming = WorkloadDriver(
            plan, config, spec, hybrid_params, metrics=streaming_sink,
        ).run().metrics
        assert streaming is streaming_sink
        assert not streaming.completions  # nothing retained
        expected = dict(event.summary())
        expected.pop("per_query")
        assert repr(streaming.summary()) == repr(expected)
        with pytest.raises(NotImplementedError):
            streaming.completions_of("default")

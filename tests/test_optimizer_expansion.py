"""Tests for macro-expansion, scheduling, homes, and plan compilation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Relation
from repro.optimizer import (
    BaseNode,
    CardinalityEstimator,
    HomeError,
    JoinNode,
    OpKind,
    ParallelExecutionPlan,
    Schedule,
    ScheduleError,
    all_nodes_homes,
    best_bushy_trees,
    build_schedule,
    chain_total_order,
    compile_plan,
    derived_homes,
    macro_expand,
    validate_homes,
)
from repro.query import JoinEdge, QueryGenerator, QueryGeneratorConfig, QueryGraph
from repro.sim import MachineConfig, RandomStreams


def four_relation_bushy():
    """The paper's Figure 2 shape: (R join S) join (T join U)."""
    relations = [Relation("R", 1000), Relation("S", 2000),
                 Relation("T", 1500), Relation("U", 2500)]
    edges = [
        JoinEdge("R", "S", 1e-3),
        JoinEdge("S", "T", 1e-3),
        JoinEdge("T", "U", 1e-3),
    ]
    graph = QueryGraph(relations, edges)
    j1 = JoinNode(BaseNode(graph.relation("R")), BaseNode(graph.relation("S")), 1e-3)
    j2 = JoinNode(BaseNode(graph.relation("T")), BaseNode(graph.relation("U")), 1e-3)
    tree = JoinNode(j1, j2, 1e-3)
    return graph, tree


# ---------------------------------------------------------------------------
# Macro-expansion
# ---------------------------------------------------------------------------

class TestMacroExpansion:
    def test_operator_counts(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        # 4 relations: 4 scans; 3 joins: 3 builds + 3 probes.
        assert len(ops.scans()) == 4
        assert len(ops.builds()) == 3
        assert len(ops.probes()) == 3
        assert len(ops) == 10

    def test_labels_follow_paper_convention(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        labels = {op.label for op in ops}
        assert {"Scan1", "Scan2", "Scan3", "Scan4",
                "Build1", "Probe1", "Build2", "Probe2",
                "Build3", "Probe3"} == labels

    def test_build_probe_pairing(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        for probe in ops.probes():
            build = ops.op(ops.build_of(probe.op_id))
            assert build.kind is OpKind.BUILD
            assert build.join_id == probe.join_id
            assert ops.probe_of(build.op_id) == probe.op_id

    def test_root_is_final_probe(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        root = ops.op(ops.root_id)
        assert root.kind is OpKind.PROBE
        assert root.consumer_id is None

    def test_cardinality_propagation(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        scan_r = next(o for o in ops.scans() if o.relation.name == "R")
        assert scan_r.output_cardinality == 1000
        probe1 = next(o for o in ops.probes() if o.label == "Probe1")
        # |R join S| = 1000 * 2000 * 1e-3 = 2000
        assert probe1.output_cardinality == pytest.approx(2000)

    def test_scan_selectivity_reduces_output(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph), scan_selectivity=0.5)
        scan_r = next(o for o in ops.scans() if o.relation.name == "R")
        assert scan_r.output_cardinality == 500

    def test_invalid_scan_selectivity(self):
        graph, tree = four_relation_bushy()
        with pytest.raises(ValueError):
            macro_expand(tree, CardinalityEstimator(graph), scan_selectivity=0)

    def test_pipeline_chains_are_paths(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        # Chains: {Scan1,Build1}, {Scan2,Probe1,Build2}, {Scan3,Build3},
        # {Scan4,Probe3,Probe2} — as in the paper's Figure 2.
        chain_labels = sorted(
            tuple(ops.op(i).label for i in chain.op_ids) for chain in ops.chains
        )
        assert chain_labels == sorted([
            ("Scan1", "Build1"),
            ("Scan2", "Probe1", "Build2"),
            ("Scan3", "Build3"),
            ("Scan4", "Probe3", "Probe2"),
        ])

    def test_every_chain_starts_with_scan(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        for chain in ops.chains:
            assert ops.op(chain.source_id).kind is OpKind.SCAN

    def test_chain_of(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        for chain in ops.chains:
            for op_id in chain.op_ids:
                assert ops.chain_of(op_id).chain_id == chain.chain_id

    def test_fanout(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        probe1 = next(o for o in ops.probes() if o.label == "Probe1")
        # Each S tuple matches sel * |R| = 1e-3 * 1000 = 1 R tuple.
        assert probe1.fanout == pytest.approx(1.0)
        build1 = next(o for o in ops.builds() if o.label == "Build1")
        assert build1.fanout == 0.0


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------

class TestScheduling:
    def _ops(self):
        graph, tree = four_relation_bushy()
        return macro_expand(tree, CardinalityEstimator(graph))

    def _by_label(self, ops):
        return {op.label: op.op_id for op in ops}

    def test_hash_constraints_always_present(self):
        ops = self._ops()
        ids = self._by_label(ops)
        schedule = build_schedule(ops, heuristic1=False, heuristic2=False)
        for join in (1, 2, 3):
            assert ids[f"Build{join}"] in schedule.predecessors_of(ids[f"Probe{join}"])

    def test_heuristic1_blocks_chain_sources(self):
        """Figure 2: Build1<Scan2, Build2<Scan4, Build3<Scan4."""
        ops = self._ops()
        ids = self._by_label(ops)
        schedule = build_schedule(ops, heuristic1=True, heuristic2=False)
        assert ids["Build1"] in schedule.predecessors_of(ids["Scan2"])
        assert ids["Build2"] in schedule.predecessors_of(ids["Scan4"])
        assert ids["Build3"] in schedule.predecessors_of(ids["Scan4"])

    def test_heuristic2_sequences_chains(self):
        ops = self._ops()
        schedule = build_schedule(ops, heuristic1=True, heuristic2=True)
        order = chain_total_order(ops)
        # Consecutive chains: terminal of earlier precedes source of later.
        for earlier, later in zip(order, order[1:]):
            terminal = ops.chains[earlier].terminal_id
            source = ops.chains[later].source_id
            assert terminal in schedule.predecessors_of(source)

    def test_schedule_is_acyclic(self):
        ops = self._ops()
        schedule = build_schedule(ops)
        order = schedule.topological_order()
        assert len(order) == len(ops)
        assert schedule.is_consistent_linearization(order)

    def test_initially_unblocked_nonempty(self):
        ops = self._ops()
        schedule = build_schedule(ops)
        unblocked = schedule.initially_unblocked()
        assert unblocked
        for op_id in unblocked:
            assert not schedule.predecessors_of(op_id)

    def test_cycle_detection(self):
        bad = Schedule({0: frozenset([1]), 1: frozenset([0])})
        with pytest.raises(ScheduleError):
            bad.topological_order()

    def test_is_consistent_linearization_rejects_violations(self):
        schedule = Schedule({0: frozenset(), 1: frozenset([0])})
        assert schedule.is_consistent_linearization([0, 1])
        assert not schedule.is_consistent_linearization([1, 0])
        assert not schedule.is_consistent_linearization([0])

    def test_chain_total_order_respects_dependencies(self):
        ops = self._ops()
        order = chain_total_order(ops)
        deps = ops.chain_dependencies()
        position = {cid: i for i, cid in enumerate(order)}
        for cid, dep_set in deps.items():
            for dep in dep_set:
                assert position[dep] < position[cid]


# ---------------------------------------------------------------------------
# Homes
# ---------------------------------------------------------------------------

class TestHomes:
    def test_all_nodes_homes(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        homes = all_nodes_homes(ops, [0, 1, 2])
        assert all(home == (0, 1, 2) for home in homes.values())

    def test_all_nodes_requires_nodes(self):
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        with pytest.raises(HomeError):
            all_nodes_homes(ops, [])

    def test_derived_homes_respect_scan_constraint(self):
        from repro.catalog import place_relation
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        placements = {
            "R": place_relation(graph.relation("R"), [0], 2),
            "S": place_relation(graph.relation("S"), [1], 2),
            "T": place_relation(graph.relation("T"), [1], 2),
            "U": place_relation(graph.relation("U"), [2], 2),
        }
        homes = derived_homes(ops, placements, default_nodes=[1, 2])
        validate_homes(ops, homes, placements)
        scan_r = next(o for o in ops.scans() if o.relation.name == "R")
        assert homes[scan_r.op_id] == (0,)

    def test_validate_homes_rejects_mismatched_scan(self):
        from repro.catalog import place_relation
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        placements = {
            name: place_relation(graph.relation(name), [0], 2)
            for name in ("R", "S", "T", "U")
        }
        homes = all_nodes_homes(ops, [0, 1])  # scans claim (0,1), placement is (0,)
        with pytest.raises(HomeError):
            validate_homes(ops, homes, placements)

    def test_validate_homes_rejects_split_join(self):
        from repro.catalog import place_relation
        graph, tree = four_relation_bushy()
        ops = macro_expand(tree, CardinalityEstimator(graph))
        placements = {
            name: place_relation(graph.relation(name), [0, 1], 2)
            for name in ("R", "S", "T", "U")
        }
        homes = all_nodes_homes(ops, [0, 1])
        probe = ops.probes()[0]
        homes[probe.op_id] = (0,)  # break constraint (ii)
        with pytest.raises(HomeError):
            validate_homes(ops, homes, placements)


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------

class TestCompilePlan:
    def test_compile_simple_plan(self):
        graph, tree = four_relation_bushy()
        config = MachineConfig(nodes=2, processors_per_node=4)
        plan = compile_plan(graph, tree, config, label="test")
        assert plan.label == "test"
        assert plan.node_set == (0, 1)
        assert set(plan.placements) == {"R", "S", "T", "U"}
        assert len(plan.estimated_work) == len(plan.operators)

    def test_plan_placements_cover_cardinalities(self):
        graph, tree = four_relation_bushy()
        config = MachineConfig(nodes=3, processors_per_node=2)
        plan = compile_plan(graph, tree, config)
        for name, placement in plan.placements.items():
            assert sum(placement.tuples_per_node) == graph.relation(name).cardinality

    def test_distorted_plan_changes_estimates_not_truth(self):
        import random
        graph, tree = four_relation_bushy()
        config = MachineConfig(nodes=1, processors_per_node=4)
        plan = compile_plan(graph, tree, config)
        distorted = plan.distorted(0.3, random.Random(5))
        assert distorted.operators is plan.operators
        assert distorted.placements is plan.placements
        assert distorted.estimated_work != plan.estimated_work

    def test_distortion_zero_keeps_estimates(self):
        import random
        graph, tree = four_relation_bushy()
        config = MachineConfig(nodes=1, processors_per_node=4)
        plan = compile_plan(graph, tree, config)
        undistorted = plan.distorted(0.0, random.Random(5))
        for op_id, work in plan.estimated_work.items():
            assert undistorted.estimated_work[op_id] == pytest.approx(work)

    def test_plan_requires_estimates_for_all_ops(self):
        graph, tree = four_relation_bushy()
        config = MachineConfig(nodes=1, processors_per_node=4)
        plan = compile_plan(graph, tree, config)
        with pytest.raises(ValueError):
            ParallelExecutionPlan(
                graph=plan.graph,
                join_tree=plan.join_tree,
                operators=plan.operators,
                schedule=plan.schedule,
                homes=plan.homes,
                placements=plan.placements,
                estimated_work={},
            )

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_property_full_pipeline_from_random_query(self, seed):
        """query -> search -> expand -> schedule -> plan, end to end."""
        generator = QueryGenerator(
            RandomStreams(seed),
            QueryGeneratorConfig(relations_per_query=5, scale=0.01),
        )
        graph = generator.generate(0)
        tree = best_bushy_trees(graph, k=1)[0]
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = compile_plan(graph, tree, config)
        # Schedule covers all operators and is acyclic.
        assert len(plan.schedule.topological_order()) == len(plan.operators)
        # Chains partition the operators.
        covered = [op_id for chain in plan.operators.chains for op_id in chain.op_ids]
        assert sorted(covered) == sorted(op.op_id for op in plan.operators)

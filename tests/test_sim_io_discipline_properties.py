"""Property tests for the disk and network scheduling disciplines.

Mirrors :mod:`tests.test_sim_discipline_properties` for the two service
resources the discipline layer was extended to:

* **FIFO is the seed**: the default (analytic) disk arm and the
  infinite-bandwidth network produce byte-identical traces whether or
  not requests/messages carry :class:`~repro.sim.core.ChargeTag`\\ s —
  tags are inert under FIFO, so single-query figure outputs cannot
  drift no matter what service classes exist above;
* **fair share splits the arm/link by weight**: competing backlogged
  classes receive service time in proportion to their tag weights, the
  resource is work-conserving, and nothing starves;
* **preemption conserves**: however often the priority discipline
  preempts an in-flight transfer, every request completes, and the
  banked service sums to the total demand.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import ChargeTag, Environment, make_discipline
from repro.sim.disk import Disk, DiskParams
from repro.sim.network import Network, NetworkLink, NetworkParams


# ---------------------------------------------------------------------------
# Disk
# ---------------------------------------------------------------------------

def run_disk_requests(discipline, requests, trace_tags=True, params=None):
    """Run ``requests`` = [(start_delay, pages, stream, key, weight, prio)]
    against one disk; return [(completion_time, index)] plus the disk."""
    env = Environment()
    disc = None if discipline is None else make_discipline(discipline)
    disk = Disk(env, params or DiskParams(), name="d", discipline=disc)
    done = []

    def reader(index, start, pages, stream, tag):
        if start > 0:
            yield env.timeout(start)
        handle = disk.read_async(pages, stream=stream, tag=tag)
        yield handle.event
        done.append((env.now, index))

    for index, (start, pages, stream, key, weight, prio) in enumerate(requests):
        tag = (ChargeTag(key=key, weight=weight, priority=prio)
               if trace_tags else None)
        env.process(reader(index, start, pages, stream, tag))
    env.run()
    return done, disk


request_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.05),   # start delay
        st.integers(min_value=1, max_value=12),     # pages
        st.sampled_from([None, "s1", "s2"]),        # stream
        st.sampled_from(["a", "b", "c"]),           # class key
        st.floats(min_value=0.25, max_value=8.0),   # weight
        st.integers(min_value=0, max_value=3),      # priority
    ),
    min_size=1, max_size=20,
)


class TestDiskFIFOByteIdentity:
    @given(requests=request_lists)
    @settings(max_examples=30, deadline=None)
    def test_property_tags_are_inert_under_fifo(self, requests):
        """The analytic FIFO arm with service-class tags is byte-identical
        to the untagged arm: same completion times, same order, same
        busy/request statistics."""
        tagged, d1 = run_disk_requests("fifo", requests, trace_tags=True)
        untagged, d2 = run_disk_requests("fifo", requests, trace_tags=False)
        assert repr(tagged) == repr(untagged)
        assert (d1.busy_time, d1.requests, d1.pages_read) == \
               (d2.busy_time, d2.requests, d2.pages_read)

    @given(requests=request_lists)
    @settings(max_examples=30, deadline=None)
    def test_property_fifo_discipline_object_matches_default(self, requests):
        """Passing the FIFO discipline explicitly selects the analytic
        arm — identical to passing no discipline at all."""
        explicit, d1 = run_disk_requests("fifo", requests)
        default, d2 = run_disk_requests(None, requests)
        assert repr(explicit) == repr(default)
        assert d1.discipline_name == d2.discipline_name == "fifo"

    def test_fifo_wait_accounting_sees_the_busy_period(self):
        # Two stream-less requests issued back to back: the second queues
        # for the full service of the first, and the wait is attributed
        # to its tag key without shifting any event times.
        requests = [(0.0, 2, None, "a", 1.0, 0), (0.0, 2, None, "b", 1.0, 0)]
        done, disk = run_disk_requests("fifo", requests)
        one = DiskParams().service_time(2)
        assert done[0][0] == pytest.approx(one)
        assert done[1][0] == pytest.approx(2 * one)
        assert disk.wait_time == pytest.approx(one)
        assert disk.wait_time_for("b") == pytest.approx(one)
        assert disk.wait_time_for("a") == 0.0


class TestDiskFairShare:
    @given(requests=request_lists)
    @settings(max_examples=30, deadline=None)
    def test_property_every_request_completes_and_conserves(self, requests):
        done, disk = run_disk_requests("fair", requests)
        assert sorted(i for _t, i in done) == list(range(len(requests)))
        assert disk.pages_read == sum(pages for _s, pages, *_ in requests)

    def test_saturated_classes_split_the_arm_by_weight(self):
        env = Environment()
        disk = Disk(env, DiskParams(), name="d",
                    discipline=make_discipline("fair"))
        served = {"a": 0.0, "c": 0.0}
        weights = {"a": 1.0, "c": 4.0}
        service = DiskParams().service_time(1)

        def worker(key):
            tag = ChargeTag(key=key, weight=weights[key])
            while env.now < 3.0:
                yield disk.read_async(1, tag=tag).event
                served[key] += service

        for key in served:
            env.process(worker(key))
        env.run(until=3.0)
        total = sum(served.values())
        assert served["c"] / total == pytest.approx(4 / 5, rel=0.05)


class TestDiskPriorityPreemptive:
    @given(requests=request_lists)
    @settings(max_examples=30, deadline=None)
    def test_property_preemption_never_loses_a_request(self, requests):
        """Conservation: every read completes exactly once and the arm's
        banked busy time equals the total service demand."""
        done, disk = run_disk_requests("priority", requests)
        assert sorted(i for _t, i in done) == list(range(len(requests)))
        assert disk.pages_read == sum(pages for _s, pages, *_ in requests)

    def test_interactive_read_preempts_a_batch_transfer(self):
        # A long batch read from t=0; a high-priority page read arriving
        # mid-transfer preempts the arm and completes as if the batch
        # backlog did not exist; the batch read still finishes in full.
        params = DiskParams()
        long_service = params.service_time(12)
        short_service = params.service_time(1)
        requests = [
            (0.0, 12, None, "batch", 1.0, 0),
            (0.005, 1, None, "int", 1.0, 9),
        ]
        done, disk = run_disk_requests("priority", requests, params=params)
        completion = {i: t for t, i in done}
        assert completion[1] == pytest.approx(0.005 + short_service)
        assert completion[0] == pytest.approx(long_service + short_service)
        assert disk.preemptions == 1
        assert disk.busy_time == pytest.approx(long_service + short_service)

    def test_high_priority_backlog_is_served_first(self):
        # All queued at t=0 behind one running transfer: the interactive
        # requests drain before any further batch request is served.
        requests = [(0.0, 4, None, "batch", 1.0, 0)] * 4 + \
                   [(0.001, 4, None, "int", 1.0, 5)] * 2
        done, _disk = run_disk_requests("priority", requests)
        order = [i for _t, i in done]
        # Index 0 was in service; 4 and 5 (interactive) jump the queue.
        assert set(order[:3]) == {0, 4, 5}


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------

def run_network_messages(messages, params=None, discipline=None,
                         trace_tags=True):
    """Send ``messages`` = [(start_delay, nbytes, key, weight, prio)] from
    node 0 to node 1; return [(delivery_time, index)] plus the network."""
    env = Environment()
    network = Network(env, params or NetworkParams(),
                      discipline=(make_discipline(discipline)
                                  if discipline else None))
    delivered = []
    network.register(0, lambda m: None)
    network.register(1, lambda m: delivered.append((env.now, m.payload)))

    def sender(index, start, nbytes, tag):
        if start > 0:
            yield env.timeout(start)
        network.send(0, 1, "m", index, nbytes=nbytes, tag=tag)

    for index, (start, nbytes, key, weight, prio) in enumerate(messages):
        tag = (ChargeTag(key=key, weight=weight, priority=prio)
               if trace_tags else None)
        env.process(sender(index, start, nbytes, tag))
    env.run()
    return delivered, network


message_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.01),     # start delay
        st.integers(min_value=0, max_value=64_000),   # nbytes
        st.sampled_from(["a", "b", "c"]),             # class key
        st.floats(min_value=0.25, max_value=8.0),     # weight
        st.integers(min_value=0, max_value=3),        # priority
    ),
    min_size=1, max_size=20,
)


class TestNetworkFIFOByteIdentity:
    @given(messages=message_lists)
    @settings(max_examples=30, deadline=None)
    def test_property_tags_are_inert_on_the_infinite_interconnect(
            self, messages):
        """With the paper's infinite bandwidth there is no link to queue
        for: tagged and untagged sends deliver byte-identically, under
        any discipline name."""
        tagged, n1 = run_network_messages(messages, trace_tags=True,
                                          discipline="priority")
        untagged, n2 = run_network_messages(messages, trace_tags=False)
        assert repr(tagged) == repr(untagged)
        assert (n1.messages_sent, n1.bytes_sent) == \
               (n2.messages_sent, n2.bytes_sent)
        assert n1.link is None and n2.link is None

    @given(messages=message_lists)
    @settings(max_examples=20, deadline=None)
    def test_property_every_message_is_delivered_once(self, messages):
        params = NetworkParams(bandwidth=1e6)
        delivered, network = run_network_messages(
            messages, params=params, discipline="fifo"
        )
        assert sorted(i for _t, i in delivered) == list(range(len(messages)))
        assert network.link is not None


class TestNetworkLinkScheduling:
    def test_fifo_link_serializes_in_arrival_order(self):
        params = NetworkParams(bandwidth=1e6, transmission_delay=0.0)
        messages = [(0.0, 10_000, "a", 1.0, 0), (0.0, 10_000, "b", 1.0, 5)]
        delivered, network = run_network_messages(
            messages, params=params, discipline="fifo"
        )
        assert [i for _t, i in delivered] == [0, 1]
        assert delivered[0][0] == pytest.approx(0.01)
        assert delivered[1][0] == pytest.approx(0.02)
        assert network.wait_time_for("b") == pytest.approx(0.01)

    def test_priority_link_preempts_a_bulk_transfer(self):
        # A 100 KB shipment from t=0 at 1 MB/s; a high-priority control
        # message at t=0.01 cuts in instead of waiting the full 0.1s.
        params = NetworkParams(bandwidth=1e6, transmission_delay=0.0)
        messages = [(0.0, 100_000, "bulk", 1.0, 0),
                    (0.01, 1_000, "ctl", 1.0, 9)]
        delivered, network = run_network_messages(
            messages, params=params, discipline="priority"
        )
        completion = {i: t for t, i in delivered}
        assert completion[1] == pytest.approx(0.011)
        assert completion[0] == pytest.approx(0.101)
        assert network.link.resource.preemptions == 1

    def test_fair_link_splits_bandwidth_by_weight(self):
        # Two backlogged senders saturate the link (each offers its next
        # message the instant the previous one serialized): over the
        # saturated interval the classes split the bandwidth 4:1.
        env = Environment()
        params = NetworkParams(bandwidth=1e6, transmission_delay=0.0)
        link = NetworkLink(env, params, make_discipline("fair"))
        served = {"a": 0, "c": 0}
        weights = {"a": 1.0, "c": 4.0}

        def sender(key):
            tag = ChargeTag(key=key, weight=weights[key])
            while env.now < 2.0:
                yield from link.transmit(10_000, tag)
                served[key] += 10_000

        for key in served:
            env.process(sender(key))
        env.run(until=2.0)
        total = sum(served.values())
        assert served["c"] / total == pytest.approx(4 / 5, rel=0.05)
        # Work conservation: the link never idled while senders waited.
        assert link.busy_time == pytest.approx(2.0, rel=0.01)

    def test_shared_link_accounts_waits_across_overlays(self):
        # Two Network overlays over one NetworkLink (the serving layer's
        # per-query networks): their messages queue behind each other.
        env = Environment()
        params = NetworkParams(bandwidth=1e6, transmission_delay=0.0)
        link = NetworkLink(env, params, make_discipline("fifo"))
        nets = [Network(env, params, link=link) for _ in range(2)]
        done = []
        for n in nets:
            n.register(0, lambda m: None)
            n.register(1, lambda m: done.append(env.now))

        def go(net, key):
            net.send(0, 1, "m", None, nbytes=50_000, tag=ChargeTag(key=key))
            yield env.timeout(0)

        env.process(go(nets[0], "q0"))
        env.process(go(nets[1], "q1"))
        env.run()
        assert done == [pytest.approx(0.05), pytest.approx(0.1)]
        assert link.wait_time_for("q1") == pytest.approx(0.05)
        assert nets[1].wait_time_for("q1") == pytest.approx(0.05)
        assert link.wait_time_for("q0") == 0.0

    def test_link_requires_finite_bandwidth(self):
        env = Environment()
        with pytest.raises(ValueError):
            NetworkLink(env, NetworkParams())
        with pytest.raises(ValueError):
            NetworkParams(bandwidth=0.0)


class TestParamsValidation:
    def test_params_validate_all_disciplines(self):
        from repro.engine import ExecutionParams
        with pytest.raises(ValueError):
            ExecutionParams(disk_discipline="lifo")
        with pytest.raises(ValueError):
            ExecutionParams(net_discipline="edf")
        params = ExecutionParams(disk_discipline="priority",
                                 net_discipline="fair")
        assert params.disk_discipline == "priority"
        assert params.net_discipline == "fair"

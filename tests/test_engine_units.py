"""Unit tests for engine building blocks: activations, queues, routing, tables."""

import pytest

from repro.engine import ExecutionParams
from repro.engine.activation import DataActivation, TriggerActivation
from repro.engine.queues import ActivationQueue, OperatorQueueSet, QueueFull
from repro.engine.routing import Router, consumer_cells
from repro.engine.tables import HashTableStore
from repro.sim import Machine, MachineConfig


# ---------------------------------------------------------------------------
# ExecutionParams
# ---------------------------------------------------------------------------

class TestExecutionParams:
    def test_defaults_valid(self):
        params = ExecutionParams()
        assert params.batch_size == 64
        assert params.queue_capacity >= 2

    def test_buckets_scale_with_parallelism(self):
        params = ExecutionParams(fragmentation_factor=8)
        assert params.buckets_for_home(32) == 256
        # Floor of 64 buckets even on tiny homes.
        assert params.buckets_for_home(2) == 64

    @pytest.mark.parametrize("kwargs", [
        {"batch_size": 0},
        {"pages_per_trigger": 0},
        {"queue_capacity": 1},
        {"credit_window": 0},
        {"steal_fraction": 0.0},
        {"steal_fraction": 1.5},
        {"min_steal_activations": 0},
        {"max_suspension_depth": 0},
        {"pending_stall_limit": 0},
        {"fragmentation_factor": 0},
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionParams(**kwargs)


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

class TestActivations:
    def test_trigger_activation(self):
        act = TriggerActivation(op_id=1, disk_id=0, pages=4, tuples=300)
        assert act.is_trigger
        assert act.nbytes == 64

    def test_data_activation_bytes(self):
        act = DataActivation(op_id=2, group=(0, 1), tuples=64, tuple_size=100)
        assert not act.is_trigger
        assert act.nbytes == 6400


# ---------------------------------------------------------------------------
# ActivationQueue / OperatorQueueSet
# ---------------------------------------------------------------------------

def _data(op_id=5, tuples=10):
    return DataActivation(op_id=op_id, group=(0, 0), tuples=tuples)


class TestActivationQueue:
    def test_fifo_order(self):
        queue = ActivationQueue(5, 0, 0, capacity=4)
        a = _data(tuples=1)
        b = _data(tuples=2)
        queue.push(a)
        queue.push(b)
        assert queue.pop() is a
        assert queue.pop() is b

    def test_capacity_enforced(self):
        queue = ActivationQueue(5, 0, 0, capacity=2)
        queue.push(_data())
        queue.push(_data())
        assert queue.is_full
        with pytest.raises(QueueFull):
            queue.push(_data())

    def test_force_push_exceeds_capacity(self):
        queue = ActivationQueue(5, 0, 0, capacity=2)
        for _ in range(2):
            queue.push(_data())
        queue.push(_data(), force=True)
        assert len(queue) == 3

    def test_wrong_operator_rejected(self):
        queue = ActivationQueue(5, 0, 0, capacity=2)
        with pytest.raises(ValueError):
            queue.push(_data(op_id=6))

    def test_bytes_accounting(self):
        queue = ActivationQueue(5, 0, 0, capacity=4)
        queue.push(_data(tuples=10))
        assert queue.bytes_queued == 1000
        queue.pop()
        assert queue.bytes_queued == 0

    def test_end_signaled_cleared_on_push(self):
        queue = ActivationQueue(5, 0, 0, capacity=4)
        queue.end_signaled = True
        queue.push(_data())
        assert not queue.end_signaled

    def test_pop_tail_batch_takes_newest_preserving_order(self):
        queue = ActivationQueue(5, 0, 0, capacity=8)
        items = [_data(tuples=i + 1) for i in range(5)]
        for item in items:
            queue.push(item)
        stolen = queue.pop_tail_batch(2)
        assert stolen == items[3:]
        assert queue.pop() is items[0]

    def test_pop_tail_batch_bounded_by_length(self):
        queue = ActivationQueue(5, 0, 0, capacity=8)
        queue.push(_data())
        assert len(queue.pop_tail_batch(10)) == 1


class TestOperatorQueueSet:
    def test_non_empty_count_maintained(self):
        qs = OperatorQueueSet(5, 0, thread_count=3, capacity=4)
        assert qs.non_empty_queues == 0
        qs.push(0, _data())
        qs.push(0, _data())
        qs.push(2, _data())
        assert qs.non_empty_queues == 2
        qs.pop(0)
        assert qs.non_empty_queues == 2
        qs.pop(0)
        assert qs.non_empty_queues == 1
        assert qs.has_work

    def test_blocked_propagates(self):
        qs = OperatorQueueSet(5, 0, thread_count=2, capacity=4)
        qs.set_blocked(True)
        assert all(q.blocked for q in qs.queues)
        qs.set_blocked(False)
        assert not any(q.blocked for q in qs.queues)

    def test_on_push_callback(self):
        qs = OperatorQueueSet(5, 0, thread_count=2, capacity=4)
        seen = []
        qs.on_push = seen.append
        qs.push(1, _data())
        assert len(seen) == 1
        assert seen[0].thread_index == 1

    def test_first_non_empty_circular(self):
        qs = OperatorQueueSet(5, 0, thread_count=4, capacity=4)
        qs.push(1, _data())
        # Starting at 2, the scan wraps around to 1.
        assert qs.first_non_empty(2) == 1
        assert qs.first_non_empty(0) == 1
        assert qs.first_non_empty(1) == 1

    def test_first_non_empty_none_when_empty(self):
        qs = OperatorQueueSet(5, 0, thread_count=2, capacity=4)
        assert qs.first_non_empty(0) is None

    def test_steal_from_updates_count(self):
        qs = OperatorQueueSet(5, 0, thread_count=2, capacity=8)
        for _ in range(4):
            qs.push(0, _data())
        stolen = qs.steal_from(0, 4)
        assert len(stolen) == 4
        assert qs.non_empty_queues == 0


# ---------------------------------------------------------------------------
# Router
# ---------------------------------------------------------------------------

class TestRouter:
    def test_cells_enumeration(self):
        cells = consumer_cells([1, 0], threads_per_node=2)
        assert cells == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_uniform_weights_without_skew(self):
        import random
        cells = consumer_cells([0, 1], 2)
        router = Router(cells, buckets=64, theta=0.0, rng=random.Random(0))
        assert router.weights == pytest.approx([0.25] * 4)

    def test_skew_concentrates_weight(self):
        import random
        cells = consumer_cells([0, 1], 4)
        flat = Router(cells, 64, theta=0.0, rng=random.Random(0))
        skewed = Router(cells, 64, theta=1.0, rng=random.Random(0))
        assert skewed.max_cell_share > flat.max_cell_share

    def test_high_fragmentation_smooths_mild_skew(self):
        """More buckets -> flatter group weights (the Section 3.1 argument)."""
        import random
        cells = consumer_cells([0, 1], 4)
        coarse = Router(cells, buckets=8, theta=0.5, rng=random.Random(1))
        fine = Router(cells, buckets=1024, theta=0.5, rng=random.Random(1))
        assert fine.max_cell_share < coarse.max_cell_share

    def test_weights_sum_to_one(self):
        import random
        cells = consumer_cells([0, 1, 2], 4)
        router = Router(cells, 128, theta=0.7, rng=random.Random(2))
        assert sum(router.weights) == pytest.approx(1.0)

    def test_empty_cells_rejected(self):
        import random
        with pytest.raises(ValueError):
            Router([], 8, 0.0, random.Random(0))


# ---------------------------------------------------------------------------
# HashTableStore
# ---------------------------------------------------------------------------

class TestHashTableStore:
    def _store(self):
        machine = Machine(MachineConfig(nodes=1, processors_per_node=2))
        return HashTableStore(machine.node(0)), machine.node(0)

    def test_insert_accumulates_and_charges_memory(self):
        store, node = self._store()
        store.insert(1, (0, 0), tuples=10, tuple_size=100)
        store.insert(1, (0, 0), tuples=5, tuple_size=100)
        table = store.local_table(1, (0, 0))
        assert table.tuples == 15
        assert table.nbytes == 1500
        assert node.used == 1500

    def test_table_bytes_zero_for_unknown_group(self):
        store, _ = self._store()
        assert store.table_bytes(1, (0, 3)) == 0

    def test_probe_table_prefers_local(self):
        store, _ = self._store()
        store.insert(1, (0, 0), 10, 100)
        assert store.probe_table(1, (0, 0)).tuples == 10

    def test_install_copy_and_cache_check(self):
        store, node = self._store()
        assert not store.has_copy(1, (2, 0))
        store.install_copy(1, (2, 0), tuples=20, nbytes=2000)
        assert store.has_copy(1, (2, 0))
        assert store.probe_table(1, (2, 0)).tuples == 20
        assert node.used == 2000

    def test_double_install_rejected(self):
        store, _ = self._store()
        store.install_copy(1, (2, 0), 1, 100)
        with pytest.raises(ValueError):
            store.install_copy(1, (2, 0), 1, 100)

    def test_release_join_frees_memory(self):
        store, node = self._store()
        store.insert(1, (0, 0), 10, 100)
        store.insert(2, (0, 1), 10, 100)
        store.install_copy(1, (3, 0), 5, 500)
        released = store.release_join(1)
        assert released == 1500
        assert node.used == 1000
        assert store.probe_table(1, (0, 0)) is None
        assert store.local_table(2, (0, 1)) is not None

    def test_total_bytes(self):
        store, _ = self._store()
        store.insert(1, (0, 0), 10, 100)
        store.install_copy(2, (1, 0), 5, 500)
        assert store.total_bytes() == 1500

"""Unit tests for the SP executor internals and the metrics objects."""

import pytest

from repro.engine import (
    ExecutionMetrics,
    QueryExecutor,
    SynchronousPipeliningExecutor,
)
from repro.optimizer import chain_total_order
from repro.sim import MachineConfig
from repro.workloads import pipeline_chain_scenario, two_node_join_scenario


class TestExecutionMetrics:
    def test_idle_fraction_complements_busy(self):
        metrics = ExecutionMetrics(response_time=10.0, thread_count=4,
                                   thread_busy_time=30.0)
        assert metrics.idle_fraction() == pytest.approx(0.25)
        assert metrics.busy_fraction() == pytest.approx(0.75)

    def test_zero_response_time_safe(self):
        metrics = ExecutionMetrics()
        assert metrics.idle_fraction() == 0.0
        assert metrics.busy_fraction() == 0.0

    def test_busy_fraction_clamped(self):
        metrics = ExecutionMetrics(response_time=1.0, thread_count=1,
                                   thread_busy_time=2.0)
        assert metrics.busy_fraction() == 1.0
        assert metrics.idle_fraction() == 0.0

    def test_result_str_mentions_key_facts(self):
        from repro.engine import ExecutionResult
        result = ExecutionResult(
            plan_label="p", strategy="DP", config_label="2x4",
            response_time=1.25, metrics=ExecutionMetrics(
                response_time=1.25, thread_count=8, thread_busy_time=8.0,
                result_tuples=123,
            ),
        )
        text = str(result)
        assert "DP" in text and "2x4" in text and "123" in text


class TestSPExecutor:
    def test_rejects_multi_node(self):
        from repro.engine import StrategyError
        plan, _ = two_node_join_scenario()
        with pytest.raises(StrategyError):
            SynchronousPipeliningExecutor(
                plan, MachineConfig(nodes=2, processors_per_node=2)
            )

    def test_chains_execute_in_schedule_order(self):
        """SP runs chains one at a time in the plan's total order."""
        plan, _ = pipeline_chain_scenario(nodes=1, processors_per_node=2,
                                          base_tuples=500)
        order = chain_total_order(plan.operators)
        # The driving scan's chain is last (it probes every hash table).
        longest = max(plan.operators.chains, key=len)
        assert order[-1] == longest.chain_id

    def test_busy_time_bounded_by_response(self):
        plan, config = pipeline_chain_scenario(nodes=1, processors_per_node=4,
                                               base_tuples=1000)
        result = QueryExecutor(plan, config, strategy="SP").run()
        m = result.metrics
        assert 0 < m.thread_busy_time <= m.response_time * m.thread_count * 1.001

    def test_no_network_traffic(self):
        plan, config = pipeline_chain_scenario(nodes=1, processors_per_node=4,
                                               base_tuples=1000)
        result = QueryExecutor(plan, config, strategy="SP").run()
        assert result.metrics.messages_sent == 0
        assert result.metrics.loadbalance_bytes == 0

    def test_deterministic(self):
        plan, config = pipeline_chain_scenario(nodes=1, processors_per_node=4,
                                               base_tuples=1000)
        a = QueryExecutor(plan, config, strategy="SP").run()
        b = QueryExecutor(plan, config, strategy="SP").run()
        assert a.response_time == b.response_time
        assert a.metrics.result_tuples == b.metrics.result_tuples

    def test_more_processors_not_slower(self):
        plan2, config2 = pipeline_chain_scenario(nodes=1, processors_per_node=2,
                                                 base_tuples=2000)
        plan8, config8 = pipeline_chain_scenario(nodes=1, processors_per_node=8,
                                                 base_tuples=2000)
        t2 = QueryExecutor(plan2, config2, strategy="SP").run().response_time
        t8 = QueryExecutor(plan8, config8, strategy="SP").run().response_time
        assert t8 < t2

    def test_scan_count_matches_base_data(self):
        plan, config = pipeline_chain_scenario(nodes=1, processors_per_node=4,
                                               base_tuples=1500)
        result = QueryExecutor(plan, config, strategy="SP").run()
        expected = sum(r.cardinality for r in plan.graph.relations.values())
        assert result.metrics.tuples_scanned == expected

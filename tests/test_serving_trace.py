"""Trace subsystem: event codec, recording, and record→replay fidelity.

The load-bearing properties:

* **arrival exactness** — open-loop submissions land at the *exact*
  sampled instants (the absolute-timestamp bugfix: relative timeouts
  accumulated float error, so recorded arrivals drifted from the
  schedule);
* **per-index purity** — a query's plan and service class are pure
  functions of ``(spec.seed, index)``, independent of completion
  interleaving (the lazy-shared-stream bugfix);
* **codec losslessness** — every event type survives
  ``decode(encode(e)) == e``, through the gzip JSON-lines sink included;
* **record→replay byte-identity** — replaying a run's own trace yields a
  byte-identical ``WorkloadMetrics.summary()`` for open-loop,
  closed-loop and shed-heavy runs, with recording itself perturbing
  nothing.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Relation
from repro.optimizer import BaseNode, JoinNode, compile_plan
from repro.query import JoinEdge, QueryGraph
from repro.serving import (
    AdmissionPolicy,
    ArrivalSpec,
    JsonLinesLogger,
    MemoryLogger,
    MultiQueryCoordinator,
    Trace,
    WorkloadDriver,
    WorkloadSpec,
    read_events,
    sample_arrival_times,
)
from repro.serving.classes import BATCH, INTERACTIVE, ServiceClass
from repro.serving.trace import (
    BrokerImbalance,
    QueryAdmitted,
    QueryFinished,
    QueryShedEvent,
    QueryStarted,
    QuerySubmitted,
    RunStarted,
    StealRound,
    StealTransfer,
    TraceQuery,
    decode_event,
    encode_event,
)
from repro.sim import MachineConfig, RandomStreams
from repro.sim.core import Environment, SimulationError


def small_join_plan(config, r=600, s=1200, label="serve"):
    sel = 1.0 / r
    graph = QueryGraph(
        [Relation("R", r), Relation("S", s)], [JoinEdge("R", "S", sel)]
    )
    tree = JoinNode(BaseNode(graph.relation("R")), BaseNode(graph.relation("S")),
                    sel)
    return compile_plan(graph, tree, config, label=label)


def plan_population(config, count=3):
    from repro.optimizer import best_bushy_trees
    from repro.query import QueryGenerator, QueryGeneratorConfig

    generator = QueryGenerator(
        RandomStreams(7),
        QueryGeneratorConfig(relations_per_query=3, scale=0.002),
    )
    plans = []
    for index in range(count):
        graph = generator.generate(index)
        tree = best_bushy_trees(graph, k=1)[0]
        plans.append(compile_plan(graph, tree, config, label=f"g{index}"))
    return plans


def summary_bytes(metrics):
    return json.dumps(metrics.summary(), sort_keys=True)


# -- kernel primitive --------------------------------------------------------


class TestTimeoutAt:
    def test_fires_at_exact_absolute_instant(self):
        env = Environment()
        seen = []

        def proc():
            yield env.timeout_at(0.1 + 0.2)  # the classic 0.30000000000000004
            seen.append(env.now)

        env.process(proc())
        env.run()
        assert seen == [0.1 + 0.2]

    def test_rejects_past_instants(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            env.timeout_at(0.5)

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()


# -- bugfix regressions ------------------------------------------------------


class TestDriverDeterminismContract:
    def test_recorded_arrivals_equal_sampled_schedule(self):
        # Bugfix 1: relative timeouts accumulated float error, so the
        # recorded arrival_time diverged from sample_arrival_times in the
        # low bits.  Absolute scheduling makes them equal, bit for bit.
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = small_join_plan(config)
        spec = WorkloadSpec(
            queries=12, arrival=ArrivalSpec(kind="poisson", rate=100.0),
            seed=13,
        )
        sampled = sample_arrival_times(
            spec.arrival, spec.queries,
            RandomStreams(WorkloadDriver(plan, config, spec).streams.master_seed),
        )
        result = WorkloadDriver(plan, config, spec).run()
        recorded = sorted(
            (c.query_id, c.arrival_time) for c in result.metrics.completions
        )
        assert [t for _qid, t in recorded] == sampled

    def test_plan_and_class_choice_pure_in_seed_and_index(self):
        # Bugfix 2: _plan_for/_class_for drew lazily from shared streams,
        # so a query's plan depended on when it was generated.  Now they
        # are pure in (seed, index): calling them in any order, any
        # number of times, gives the same answer.
        config = MachineConfig(nodes=2, processors_per_node=2)
        plans = plan_population(config)
        spec = WorkloadSpec(
            queries=6, seed=5,
            classes=((INTERACTIVE, 1.0), (BATCH, 3.0)),
        )
        driver = WorkloadDriver(plans, config, spec)
        forward = [(driver._plan_index_for(i), driver._class_for(i).name)
                   for i in range(6)]
        backward = [(driver._plan_index_for(i), driver._class_for(i).name)
                    for i in reversed(range(6))]
        assert forward == list(reversed(backward))
        fresh = WorkloadDriver(plans, config, spec)
        assert forward == [
            (fresh._plan_index_for(i), fresh._class_for(i).name)
            for i in range(6)
        ]

    def test_open_and_closed_loop_agree_on_plan_assignment(self):
        # The same (seed, index) must map to the same plan under either
        # arrival regime — the property the old shared-stream draws broke
        # (closed-loop completion order perturbed the stream cursor).
        config = MachineConfig(nodes=2, processors_per_node=2)
        plans = plan_population(config)
        base = WorkloadSpec(queries=6, seed=5)
        open_spec = dataclasses.replace(
            base, arrival=ArrivalSpec(kind="poisson", rate=50.0)
        )
        closed_spec = dataclasses.replace(
            base, arrival=ArrivalSpec(kind="closed", population=3),
            policy=AdmissionPolicy(max_multiprogramming=3),
        )
        by_open = {
            c.query_id: c.plan_label
            for c in WorkloadDriver(plans, config, open_spec)
            .run().metrics.completions
        }
        by_closed = {
            c.query_id: c.plan_label
            for c in WorkloadDriver(plans, config, closed_spec)
            .run().metrics.completions
        }
        assert by_open == by_closed

    def test_duplicate_class_names_rejected(self):
        # Bugfix 3: metrics key per-class views by name, so two distinct
        # classes sharing one would merge silently.
        twin = ServiceClass("interactive", weight=2.0, priority=3)
        with pytest.raises(ValueError, match="duplicate service-class name"):
            WorkloadSpec(classes=((INTERACTIVE, 1.0), (twin, 1.0)))

    def test_distinct_class_names_still_accepted(self):
        spec = WorkloadSpec(classes=((INTERACTIVE, 1.0), (BATCH, 1.0)))
        assert len(spec.classes) == 2


# -- event codec -------------------------------------------------------------


EVENT_EXAMPLES = [
    RunStarted(time=0.0, queries=4, arrival_kind="poisson", strategy="DP",
               seed=3),
    QuerySubmitted(time=0.25, query_id=1, plan_index=2, plan_label="g2",
                   strategy="FP", service_class=INTERACTIVE, params_seed=99),
    QuerySubmitted(time=0.5, query_id=2, plan_index=None, plan_label="adhoc",
                   strategy="DP", service_class=None, params_seed=0),
    QueryAdmitted(time=0.3, query_id=1, queued_for=0.05),
    QueryStarted(time=0.3, query_id=1, strategy="FP"),
    QueryFinished(time=1.5, query_id=1, plan_label="g2",
                  service_class="interactive", latency=1.25,
                  queueing_delay=0.05),
    QueryShedEvent(time=2.0, query_id=3, service_class="batch",
                   reason="queue_timeout"),
    StealRound(time=0.7, query_id=1, node_id=0, scope=None, cross=False),
    StealRound(time=0.8, query_id=1, node_id=1, scope=4, cross=True),
    StealTransfer(time=0.9, query_id=1, src_node=1, dst_node=0,
                  activations=12, hash_bytes=8192),
    BrokerImbalance(time=0.6, node_id=0, local_load=1, peak_load=9),
]


class TestEventCodec:
    @pytest.mark.parametrize("event", EVENT_EXAMPLES,
                             ids=lambda e: type(e).__name__)
    def test_encode_decode_roundtrip(self, event):
        assert decode_event(encode_event(event)) == event

    def test_json_roundtrip_via_text(self):
        for event in EVENT_EXAMPLES:
            text = json.dumps(encode_event(event), sort_keys=True)
            assert decode_event(json.loads(text)) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            decode_event({"kind": "nope"})

    def test_non_event_rejected(self):
        with pytest.raises(TypeError):
            encode_event({"kind": "run_started"})

    @pytest.mark.parametrize("suffix", [".jsonl", ".jsonl.gz"])
    def test_sink_roundtrips_every_event_type(self, tmp_path, suffix):
        path = str(tmp_path / f"events{suffix}")
        with JsonLinesLogger(path) as logger:
            for event in EVENT_EXAMPLES:
                logger.log(event)
        assert read_events(path) == EVENT_EXAMPLES

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_sink_roundtrip_property(self, tmp_path_factory, data):
        # Randomized field values (floats with full precision, unicode
        # class names) through the gzip sink: lossless for every kind.
        floats = st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False)
        ints = st.integers(min_value=0, max_value=2**31)
        cls = st.one_of(
            st.none(),
            st.builds(
                ServiceClass,
                name=st.text(min_size=1, max_size=8),
                weight=st.floats(min_value=0.1, max_value=10.0,
                                 allow_nan=False),
                priority=st.integers(min_value=-5, max_value=5),
            ),
        )
        events = [
            RunStarted(time=data.draw(floats), queries=data.draw(ints),
                       arrival_kind=data.draw(st.sampled_from(
                           ["poisson", "bursty", "closed", "trace"])),
                       strategy="DP", seed=data.draw(ints)),
            QuerySubmitted(time=data.draw(floats), query_id=data.draw(ints),
                           plan_index=data.draw(st.none() | ints),
                           plan_label=data.draw(st.text(max_size=8)),
                           strategy="FP", service_class=data.draw(cls),
                           params_seed=data.draw(ints)),
            QueryFinished(time=data.draw(floats), query_id=data.draw(ints),
                          plan_label="p", service_class="c",
                          latency=data.draw(floats),
                          queueing_delay=data.draw(floats)),
            StealTransfer(time=data.draw(floats), query_id=data.draw(ints),
                          src_node=0, dst_node=1,
                          activations=data.draw(ints),
                          hash_bytes=data.draw(ints)),
        ]
        path = str(tmp_path_factory.mktemp("trace") / "ev.jsonl.gz")
        with JsonLinesLogger(path) as logger:
            for event in events:
                logger.log(event)
        assert read_events(path) == events


# -- recording ---------------------------------------------------------------


class TestRecording:
    def test_logger_records_full_lifecycle(self):
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = small_join_plan(config)
        spec = WorkloadSpec(
            queries=4, arrival=ArrivalSpec(kind="poisson", rate=100.0),
            seed=2,
        )
        logger = MemoryLogger()
        WorkloadDriver(plan, config, spec, logger=logger).run()
        kinds = [type(e).__name__ for e in logger.events]
        assert kinds[0] == "RunStarted"
        assert kinds.count("QuerySubmitted") == 4
        assert kinds.count("QueryAdmitted") == 4
        assert kinds.count("QueryStarted") == 4
        assert kinds.count("QueryFinished") == 4
        by_query = [e for e in logger.events
                    if isinstance(e, QuerySubmitted)]
        assert sorted(e.query_id for e in by_query) == [0, 1, 2, 3]

    def test_recording_does_not_perturb_the_run(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plans = plan_population(config)
        spec = WorkloadSpec(
            queries=6, arrival=ArrivalSpec(kind="closed", population=3),
            policy=AdmissionPolicy(max_multiprogramming=3), seed=5,
        )
        bare = WorkloadDriver(plans, config, spec).run()
        logged = WorkloadDriver(plans, config, spec,
                                logger=MemoryLogger()).run()
        assert summary_bytes(bare.metrics) == summary_bytes(logged.metrics)

    def test_steal_rounds_logged_when_stealing_happens(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config, r=2000, s=4000)
        spec = WorkloadSpec(queries=2, seed=1,
                            arrival=ArrivalSpec(kind="poisson", rate=1000.0))
        logger = MemoryLogger()
        result = WorkloadDriver(plan, config, spec, logger=logger).run()
        rounds = [e for e in logger.events if isinstance(e, StealRound)]
        assert len(rounds) == sum(
            c.result.metrics.steal_rounds for c in result.metrics.completions
        )

    def test_shed_events_logged(self):
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = small_join_plan(config)
        spec = WorkloadSpec(
            queries=8,
            arrival=ArrivalSpec(kind="bursty", rate=500.0, burst_size=8.0),
            policy=AdmissionPolicy(max_multiprogramming=1,
                                   queue_timeout=0.01),
            seed=4,
        )
        logger = MemoryLogger()
        result = WorkloadDriver(plan, config, spec, logger=logger).run()
        shed_events = [e for e in logger.events
                       if isinstance(e, QueryShedEvent)]
        assert result.metrics.shed_count > 0
        assert len(shed_events) == result.metrics.shed_count


# -- record -> replay --------------------------------------------------------


class TestRecordReplayRoundTrip:
    def _roundtrip(self, plans, config, spec, tmp_path):
        path = str(tmp_path / "run.jsonl.gz")
        with JsonLinesLogger(path) as logger:
            original = WorkloadDriver(plans, config, spec,
                                      logger=logger).run()
        trace = Trace.load(path)
        replayed = WorkloadDriver(plans, config, spec, trace=trace).run()
        assert summary_bytes(original.metrics) == \
            summary_bytes(replayed.metrics)
        return original, trace

    def test_open_loop_roundtrip(self, tmp_path):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plans = plan_population(config)
        spec = WorkloadSpec(
            queries=8, arrival=ArrivalSpec(kind="poisson", rate=50.0),
            seed=3,
        )
        original, trace = self._roundtrip(plans, config, spec, tmp_path)
        assert not trace.closed_loop
        assert [q.query_id for q in trace.queries] == list(range(8))

    def test_closed_loop_roundtrip(self, tmp_path):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plans = plan_population(config)
        spec = WorkloadSpec(
            queries=8, arrival=ArrivalSpec(kind="closed", population=3),
            policy=AdmissionPolicy(max_multiprogramming=3), seed=5,
        )
        _original, trace = self._roundtrip(plans, config, spec, tmp_path)
        assert trace.closed_loop

    def test_closed_loop_with_think_time_roundtrip(self, tmp_path):
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = small_join_plan(config)
        spec = WorkloadSpec(
            queries=6,
            arrival=ArrivalSpec(kind="closed", population=2,
                                think_time=0.05),
            seed=8,
        )
        self._roundtrip([plan], config, spec, tmp_path)

    def test_shed_heavy_roundtrip(self, tmp_path):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plans = plan_population(config)
        spec = WorkloadSpec(
            queries=12,
            arrival=ArrivalSpec(kind="bursty", rate=200.0, burst_size=6.0),
            policy=AdmissionPolicy(max_multiprogramming=2,
                                   queue_timeout=0.05),
            seed=9,
        )
        original, _trace = self._roundtrip(plans, config, spec, tmp_path)
        assert original.metrics.shed_count > 0

    def test_service_class_mix_roundtrip(self, tmp_path):
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = small_join_plan(config)
        interactive = dataclasses.replace(INTERACTIVE, latency_slo=5.0)
        spec = WorkloadSpec(
            queries=8, arrival=ArrivalSpec(kind="poisson", rate=80.0),
            classes=((interactive, 1.0), (BATCH, 1.0)),
            policy=AdmissionPolicy(max_multiprogramming=3), seed=6,
        )
        original, trace = self._roundtrip([plan], config, spec, tmp_path)
        assert {q.service_class.name for q in trace.queries} == \
            {c.service_class for c in original.metrics.completions}

    def test_replay_of_replay_is_stable(self, tmp_path):
        # Replaying a replay's own recording converges: the first replay
        # is already byte-identical, so the second must be too.
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = small_join_plan(config)
        spec = WorkloadSpec(
            queries=5, arrival=ArrivalSpec(kind="poisson", rate=60.0),
            seed=1,
        )
        first_path = str(tmp_path / "first.jsonl")
        with JsonLinesLogger(first_path) as logger:
            original = WorkloadDriver([plan], config, spec,
                                      logger=logger).run()
        trace = Trace.load(first_path)
        second_path = str(tmp_path / "second.jsonl")
        with JsonLinesLogger(second_path) as logger:
            replayed = WorkloadDriver([plan], config, spec, trace=trace,
                                      logger=logger).run()
        re_replayed = WorkloadDriver(
            [plan], config, spec, trace=Trace.load(second_path)
        ).run()
        assert summary_bytes(original.metrics) == \
            summary_bytes(replayed.metrics) == \
            summary_bytes(re_replayed.metrics)

    def test_trace_rejects_out_of_range_plan_index(self):
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = small_join_plan(config)
        trace = Trace(queries=(TraceQuery(
            query_id=0, arrival_time=0.0, plan_index=5, strategy="DP",
            service_class=None, params_seed=1,
        ),))
        with pytest.raises(ValueError, match="plan index"):
            WorkloadDriver([plan], config, trace=trace)

    def test_trace_from_events_requires_plan_indices(self):
        events = [QuerySubmitted(time=0.0, query_id=0, plan_index=None,
                                 plan_label="adhoc", strategy="DP",
                                 service_class=None, params_seed=0)]
        with pytest.raises(ValueError, match="plan index"):
            Trace.from_events(events)


# -- coordinator-level logging (no driver) -----------------------------------


class TestCoordinatorLogging:
    def test_direct_submission_logs_without_plan_index(self):
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = small_join_plan(config)
        logger = MemoryLogger()
        coordinator = MultiQueryCoordinator(config, logger=logger)
        coordinator.submit(plan)
        coordinator.close_arrivals()
        coordinator.run()
        submitted = [e for e in logger.events
                     if isinstance(e, QuerySubmitted)]
        assert len(submitted) == 1
        assert submitted[0].plan_index is None


# -- facade / spec surface ---------------------------------------------------


class TestTraceSpecSurface:
    def test_facade_record_replay_byte_identical(self, tmp_path):
        from repro.api import ScenarioSpec, TraceSpec, run

        scenario = ScenarioSpec(
            cluster=MachineConfig(nodes=2, processors_per_node=2),
            workload=WorkloadSpec(
                queries=6, arrival=ArrivalSpec(kind="poisson", rate=40.0),
                seed=11,
            ),
        )
        path = str(tmp_path / "run.jsonl.gz")
        recorded = run(scenario, record=path)
        replayed = run(
            dataclasses.replace(scenario, trace=TraceSpec(path=path))
        )
        assert summary_bytes(recorded.metrics) == \
            summary_bytes(replayed.metrics)

    def test_trace_spec_validation(self):
        from repro.api import TraceSpec
        from repro.workloads.tracegen import TraceGenSpec

        with pytest.raises(ValueError, match="exactly one source"):
            TraceSpec()
        with pytest.raises(ValueError, match="exactly one source"):
            TraceSpec(path="x.jsonl", generate=TraceGenSpec())
        with pytest.raises(ValueError, match="limit"):
            TraceSpec(path="x.jsonl", limit=0)

    def test_trace_needs_serving_mode(self):
        from repro.api import ScenarioSpec, TraceSpec

        with pytest.raises(ValueError, match="serving"):
            ScenarioSpec(mode="single", trace=TraceSpec(path="x.jsonl"))

    def test_record_rejected_in_single_mode(self):
        from repro.api import ScenarioSpec, run

        with pytest.raises(ValueError, match="single"):
            run(ScenarioSpec(mode="single"), record="/tmp/nope.jsonl")

    def test_scenario_with_trace_serde_roundtrip(self):
        from repro.api import ScenarioSpec, TraceSpec
        from repro.workloads.tracegen import TraceGenSpec

        spec = ScenarioSpec(
            trace=TraceSpec(generate=TraceGenSpec(queries=10), limit=5),
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_trace_spec_limit_truncates(self, tmp_path):
        from repro.api import TraceSpec
        from repro.workloads.tracegen import TraceGenSpec

        spec = TraceSpec(generate=TraceGenSpec(queries=10), limit=4)
        trace = spec.resolve(plan_count=2)
        assert len(trace.queries) == 4

"""Tests for the node scheduler: stealing protocol and end detection."""

import pytest

from repro.catalog import Relation, SkewSpec
from repro.engine import ExecutionParams, QueryExecutor
from repro.engine.scheduler import StealCandidate
from repro.optimizer import BaseNode, JoinNode, compile_plan
from repro.query import JoinEdge, QueryGraph
from repro.sim import MachineConfig


def skewed_join_plan(config, r=4000, s=16000):
    sel = 1.0 / r
    graph = QueryGraph(
        [Relation("R", r), Relation("S", s)], [JoinEdge("R", "S", sel)]
    )
    tree = JoinNode(BaseNode(graph.relation("R")), BaseNode(graph.relation("S")), sel)
    return compile_plan(graph, tree, config, label="steal-test")


class TestStealCandidate:
    def test_ratio_prefers_more_work_per_byte(self):
        cheap = StealCandidate(op_id=1, join_id=1, queue_index=0,
                               steal_count=10, hash_bytes=100,
                               activation_bytes=100)
        expensive = StealCandidate(op_id=1, join_id=1, queue_index=1,
                                   steal_count=10, hash_bytes=100_000,
                                   activation_bytes=100)
        assert cheap.ratio > expensive.ratio

    def test_overhead_sums_components(self):
        candidate = StealCandidate(op_id=1, join_id=1, queue_index=0,
                                   steal_count=5, hash_bytes=300,
                                   activation_bytes=200)
        assert candidate.overhead == 500


class TestStealProtocol:
    def _run(self, strategy, **param_overrides):
        config = MachineConfig(nodes=4, processors_per_node=2)
        plan = skewed_join_plan(config)
        defaults = dict(skew=SkewSpec.uniform_redistribution(0.9), seed=3)
        defaults.update(param_overrides)
        params = ExecutionParams(**defaults)
        return QueryExecutor(plan, config, strategy=strategy,
                             params=params).run()

    def test_skew_triggers_steals(self):
        result = self._run("DP")
        assert result.metrics.steal_rounds > 0
        assert result.metrics.steals_succeeded > 0
        assert result.metrics.activations_stolen > 0

    def test_steal_traffic_is_tagged_loadbalance(self):
        result = self._run("DP")
        assert result.metrics.loadbalance_bytes > 0
        assert result.metrics.loadbalance_messages > 0

    def test_steals_ship_hash_tables(self):
        result = self._run("DP")
        # Stolen probe work needs the group's hash data at the requester.
        assert result.metrics.hash_bytes_shipped > 0

    def test_stolen_queue_cache_reduces_shipments(self):
        with_cache = self._run("DP", stolen_queue_cache=True)
        # The cache only matters on repeated steals of the same queue; at
        # minimum it must not change the result.
        assert with_cache.metrics.result_tuples == pytest.approx(16000, rel=0.02)

    def test_fp_steals_more_than_dp(self):
        """Section 5.3's mechanism: per-processor starving under FP."""
        dp = self._run("DP")
        fp = self._run("FP")
        assert fp.metrics.loadbalance_bytes >= dp.metrics.loadbalance_bytes

    def test_steal_cooldown_limits_round_rate(self):
        fast = self._run("DP", steal_cooldown=1e-6)
        slow = self._run("DP", steal_cooldown=0.5)
        assert slow.metrics.steal_rounds <= fast.metrics.steal_rounds

    def test_results_correct_with_and_without_lb(self):
        with_lb = self._run("DP", enable_global_lb=True)
        without_lb = self._run("DP", enable_global_lb=False)
        assert with_lb.metrics.result_tuples == pytest.approx(
            without_lb.metrics.result_tuples, rel=0.02
        )


class TestEndDetection:
    def test_single_node_pays_no_protocol_messages(self):
        config = MachineConfig(nodes=1, processors_per_node=4)
        plan = skewed_join_plan(config)
        result = QueryExecutor(plan, config, strategy="DP").run()
        assert result.metrics.messages_sent == 0

    def test_multi_node_protocol_message_count(self):
        """4(n-1) control messages per operator end (Section 4)."""
        config = MachineConfig(nodes=3, processors_per_node=2)
        plan = skewed_join_plan(config)
        params = ExecutionParams(enable_global_lb=False)
        result = QueryExecutor(plan, config, strategy="DP", params=params).run()
        n_ops = len(plan.operators)
        expected_end_messages = n_ops * 4 * (config.nodes - 1)
        # Control traffic = end-detection + credit messages; end-detection
        # accounts for exactly 4(n-1) per operator.
        end_messages = sum(
            1 for kind in ("end_queues", "end_confirm_request",
                           "end_confirm_reply", "end_terminate")
        )
        assert end_messages == 4  # the four protocol phases exist
        # The protocol's messages are part of the control purpose count.
        assert result.metrics.messages_sent >= expected_end_messages

    def test_end_detection_latency_delays_termination(self):
        """Termination lags actual completion by 4 transmission delays."""
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = skewed_join_plan(config)
        delay = 0.5e-3
        result = QueryExecutor(plan, config, strategy="DP").run()
        ends = sorted(result.metrics.op_end_times.values())
        # Operator end times are spaced by at least the protocol latency
        # when they are on the critical path (coarse check: the last two
        # distinct end times differ by >= 4 delays or are simultaneous).
        assert result.response_time >= ends[0] + 4 * delay

    def test_all_ops_terminate_under_every_strategy(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = skewed_join_plan(config)
        for strategy in ("DP", "FP"):
            result = QueryExecutor(plan, config, strategy=strategy).run()
            assert len(result.metrics.op_end_times) == len(plan.operators)


class TestFPAllocation:
    def test_degenerate_fewer_threads_than_ops_still_completes(self):
        """K < chain length: threads own several operators round-robin."""
        config = MachineConfig(nodes=1, processors_per_node=1)
        plan = skewed_join_plan(config)
        result = QueryExecutor(plan, config, strategy="FP").run()
        assert result.metrics.result_tuples == pytest.approx(16000, rel=0.02)

    def test_fp_respects_estimates(self):
        """A plan with deliberately wrong estimates allocates differently
        and (generally) runs slower."""
        import random
        config = MachineConfig(nodes=1, processors_per_node=8)
        plan = skewed_join_plan(config)
        good = QueryExecutor(plan, config, strategy="FP").run()
        # Invert the estimates: give all weight to the cheapest operator.
        inverted = {
            op_id: 1.0 / max(w, 1.0) for op_id, w in plan.estimated_work.items()
        }
        bad_plan = plan.with_estimates(inverted, label="inverted")
        bad = QueryExecutor(bad_plan, config, strategy="FP").run()
        assert bad.response_time >= good.response_time * 0.95

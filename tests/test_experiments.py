"""Tests for the experiment harness: methodology, config, reporting, figures.

Figure modules run at miniature size here (2 plans, few points) — the
assertions check mechanics and direction, not precision; the benchmark
suite and the full runner carry the real measurements.
"""

import pytest

from repro.catalog import SkewSpec
from repro.experiments import (
    ExperimentOptions,
    Series,
    average_speedup,
    geometric_mean,
    relative_performance,
    scaled_execution_params,
)
from repro.experiments import figure6, figure9, section53
from repro.experiments.reporting import format_series_table, format_table
from repro.experiments.runner import EXPERIMENTS, run_all


TINY = ExperimentOptions(plans=2, workload_queries=2)


# ---------------------------------------------------------------------------
# Methodology (Section 5.1.3)
# ---------------------------------------------------------------------------

class TestMethodology:
    def test_relative_performance_formula(self):
        # (1/n) * sum(rt_i / ref_i)
        assert relative_performance([2.0, 3.0], [1.0, 1.0]) == pytest.approx(2.5)
        assert relative_performance([1.0], [2.0]) == pytest.approx(0.5)

    def test_relative_performance_validates(self):
        with pytest.raises(ValueError):
            relative_performance([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            relative_performance([], [])
        with pytest.raises(ValueError):
            relative_performance([0.0], [1.0])

    def test_average_speedup(self):
        # speedup = rt(1 proc) / rt(p procs), averaged per plan.
        assert average_speedup([8.0, 16.0], [1.0, 2.0]) == pytest.approx(8.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([0.0])

    def test_series_access(self):
        series = Series("s", ((1.0, 2.0), (2.0, 3.0)))
        assert series.xs() == [1.0, 2.0]
        assert series.ys() == [2.0, 3.0]
        assert series.y_at(2.0) == 3.0
        with pytest.raises(KeyError):
            series.y_at(9.0)


# ---------------------------------------------------------------------------
# Config / scaling
# ---------------------------------------------------------------------------

class TestConfig:
    def test_scale_one_is_paper_parameters(self):
        params = scaled_execution_params(scale=1.0)
        assert params.disk.latency == pytest.approx(17e-3)
        assert params.disk.seek_time == pytest.approx(5e-3)
        assert params.network.transmission_delay == pytest.approx(0.5e-3)

    def test_scaled_latencies(self):
        params = scaled_execution_params(scale=0.01)
        assert params.disk.latency == pytest.approx(17e-5)
        assert params.network.transmission_delay == pytest.approx(0.5e-5)
        # Per-byte CPU costs are untouched by scaling.
        assert params.network.send_instructions_per_8k == 10_000

    def test_skew_passthrough(self):
        params = scaled_execution_params(skew=SkewSpec.uniform_redistribution(0.7))
        assert params.skew.redistribution == 0.7

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_execution_params(scale=0)

    def test_options_validation(self):
        with pytest.raises(ValueError):
            ExperimentOptions(plans=0)
        with pytest.raises(ValueError):
            ExperimentOptions(scale=0)

    def test_quick_options_are_small(self):
        quick = ExperimentOptions.quick()
        assert quick.plans < ExperimentOptions().plans


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series_table_merges_x_axes(self):
        s1 = Series("one", ((1.0, 0.5),))
        s2 = Series("two", ((1.0, 0.6), (2.0, 0.7)))
        text = format_series_table([s1, s2], x_label="x")
        assert "-" in text.splitlines()[-2] or "-" in text  # missing cell marker


# ---------------------------------------------------------------------------
# Figure modules (miniature runs)
# ---------------------------------------------------------------------------

class TestFigureModules:
    def test_figure6_miniature(self):
        result = figure6.run(TINY, processor_counts=(4,))
        names = {s.name for s in result.series}
        assert names == {"SP", "DP", "FP"}
        sp = next(s for s in result.series if s.name == "SP")
        assert sp.ys() == [1.0]
        fp = next(s for s in result.series if s.name == "FP")
        dp = next(s for s in result.series if s.name == "DP")
        assert fp.y_at(4) >= dp.y_at(4) * 0.95
        assert "Figure 6" in result.table()

    def test_figure9_miniature(self):
        result = figure9.run(TINY, skew_factors=(0.0, 0.8), processors=8)
        assert result.series[0].y_at(0.0) == pytest.approx(1.0)
        assert result.max_degradation() < 1.5
        assert "Figure 9" in result.table()

    def test_section53_runs(self):
        result = section53.run(TINY, base_tuples=500)
        assert result.dp_bytes >= 0
        assert result.fp_bytes >= 0
        assert "5-operator chain" in result.table()

    def test_overload_miniature(self):
        from repro.experiments import overload

        result = overload.run(TINY, multipliers=(1.0, 2.0),
                              queries_per_cell=8)
        assert {(r.regime, r.multiplier) for r in result.rows} == {
            ("naive", 1.0), ("naive", 2.0),
            ("graceful", 1.0), ("graceful", 2.0),
        }
        for row in result.rows:
            # every logical query resolves, served or abandoned
            assert row.completed + row.gave_up == result.queries
            assert 0 <= row.good <= row.completed
            assert row.goodput >= 0
            if row.regime == "naive":
                # unbounded retries never give up
                assert row.gave_up == 0
                assert row.completed == result.queries
        assert "Goodput under overload" in result.table()
        assert "graceful" in result.degradation_summary()

    def test_service_class_sweep_miniature(self):
        from repro.experiments import service_class_sweep

        result = service_class_sweep.run(
            TINY, mpl_levels=(8,), nodes=2, processors_per_node=2,
            base_tuples=1000, queries_per_cell=12,
        )
        # The acceptance ordering: priority preemption improves the
        # interactive class's p95 over FIFO at MPL 8, batch throughput
        # stays within 20%.
        fifo = result.cell("fifo", 8, "interactive")
        prio = result.cell("priority", 8, "interactive")
        assert prio.p95_latency < fifo.p95_latency
        assert (result.cell("priority", 8, "batch").throughput
                >= 0.8 * result.cell("fifo", 8, "batch").throughput)
        # Overload handling actually shed something, somewhere.
        assert any(c.shed > 0 for c in result.overload_cells)
        assert "Service classes at MPL 8" in result.table()
        # The I/O-heavy acceptance ordering: priority *disk* scheduling
        # improves the interactive p95 over FIFO disks at MPL 8, batch
        # throughput within 20%, and the gain shows up as interactive
        # disk-queueing time (the per-resource breakdown).
        io_fifo = result.io_cell("fifo", 8, "interactive")
        io_prio = result.io_cell("priority", 8, "interactive")
        assert io_prio.p95_latency < io_fifo.p95_latency
        assert (result.io_cell("priority", 8, "batch").throughput
                >= 0.8 * result.io_cell("fifo", 8, "batch").throughput)
        assert io_prio.disk_wait < io_fifo.disk_wait
        assert "I/O-heavy mix at MPL 8" in result.table()


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

class TestRunner:
    def test_registry_covers_all_paper_artifacts(self):
        assert set(EXPERIMENTS) == {
            "params", "fig6", "fig7", "fig8", "fig9", "fig10", "sec53",
            "workload", "classes", "traces", "elastic", "overload",
            "placement",
        }

    def test_params_experiment_is_static(self, tmp_path):
        report = run_all(TINY, only=["params"], echo=False,
                         output=str(tmp_path / "r.md"))
        assert "17 ms" in report
        assert "10000 instr." in report
        assert (tmp_path / "r.md").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_all(TINY, only=["nope"], echo=False)

"""Tests for predicate graphs and the random query generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Relation
from repro.query import (
    GraphError,
    JoinEdge,
    QueryGenerator,
    QueryGeneratorConfig,
    QueryGraph,
    random_tree_edges,
)
from repro.sim import RandomStreams


def simple_graph():
    relations = [Relation("R", 100), Relation("S", 200), Relation("T", 300)]
    edges = [JoinEdge("R", "S", 0.01), JoinEdge("S", "T", 0.005)]
    return QueryGraph(relations, edges)


# ---------------------------------------------------------------------------
# QueryGraph validation
# ---------------------------------------------------------------------------

class TestQueryGraph:
    def test_valid_tree_accepted(self):
        graph = simple_graph()
        assert len(graph) == 3
        assert graph.names == ["R", "S", "T"]

    def test_single_relation_graph(self):
        graph = QueryGraph([Relation("R", 10)], [])
        assert len(graph) == 1

    def test_cycle_rejected(self):
        relations = [Relation(n, 10) for n in "RST"]
        edges = [JoinEdge("R", "S", 0.1), JoinEdge("S", "T", 0.1),
                 JoinEdge("T", "R", 0.1)]
        with pytest.raises(GraphError):
            QueryGraph(relations, edges)

    def test_disconnected_rejected(self):
        relations = [Relation(n, 10) for n in "RSTU"]
        edges = [JoinEdge("R", "S", 0.1), JoinEdge("T", "U", 0.1),
                 JoinEdge("R", "S", 0.2)]
        with pytest.raises(GraphError):
            QueryGraph(relations, edges)

    def test_too_few_edges_rejected(self):
        relations = [Relation(n, 10) for n in "RST"]
        with pytest.raises(GraphError):
            QueryGraph(relations, [JoinEdge("R", "S", 0.1)])

    def test_duplicate_relation_rejected(self):
        with pytest.raises(GraphError):
            QueryGraph([Relation("R", 1), Relation("R", 2)], [])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(GraphError):
            QueryGraph([Relation("R", 1), Relation("S", 1)],
                       [JoinEdge("R", "X", 0.1)])

    def test_self_join_edge_rejected(self):
        with pytest.raises(GraphError):
            JoinEdge("R", "R", 0.1)

    def test_nonpositive_selectivity_rejected(self):
        with pytest.raises(GraphError):
            JoinEdge("R", "S", 0.0)

    def test_neighbors_and_edges(self):
        graph = simple_graph()
        assert sorted(graph.neighbors("S")) == ["R", "T"]
        assert sorted(graph.neighbors("R")) == ["S"]
        assert len(graph.edges_of("S")) == 2

    def test_edge_between(self):
        graph = simple_graph()
        assert graph.edge_between("R", "S").selectivity == 0.01
        assert graph.edge_between("S", "R").selectivity == 0.01
        with pytest.raises(GraphError):
            graph.edge_between("R", "T")

    def test_connecting_edges_for_tree_split(self):
        graph = simple_graph()
        edges = graph.connecting_edges(frozenset(["R"]), frozenset(["S", "T"]))
        assert len(edges) == 1
        assert edges[0].key == frozenset(("R", "S"))

    def test_is_connected_subset(self):
        graph = simple_graph()
        assert graph.is_connected_subset(frozenset(["R", "S"]))
        assert not graph.is_connected_subset(frozenset(["R", "T"]))
        assert not graph.is_connected_subset(frozenset())

    def test_edge_other(self):
        edge = JoinEdge("R", "S", 0.1)
        assert edge.other("R") == "S"
        assert edge.other("S") == "R"
        with pytest.raises(KeyError):
            edge.other("T")

    def test_total_base_bytes(self):
        graph = simple_graph()
        assert graph.total_base_bytes() == (100 + 200 + 300) * 100


# ---------------------------------------------------------------------------
# random_tree_edges
# ---------------------------------------------------------------------------

class TestRandomTree:
    @given(n=st.integers(min_value=2, max_value=30), seed=st.integers(0, 1000))
    @settings(max_examples=100)
    def test_property_generates_spanning_tree(self, n, seed):
        names = [f"R{i}" for i in range(n)]
        edges = random_tree_edges(names, random.Random(seed))
        assert len(edges) == n - 1
        # Union-find connectivity check.
        parent = {name: name for name in names}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in edges:
            parent[find(a)] = find(b)
        assert len({find(name) for name in names}) == 1

    def test_shapes_vary(self):
        """Both chain-like and star-like trees should appear."""
        rng = random.Random(1)
        max_degrees = set()
        for _ in range(50):
            edges = random_tree_edges([f"R{i}" for i in range(8)], rng)
            degree = {}
            for a, b in edges:
                degree[a] = degree.get(a, 0) + 1
                degree[b] = degree.get(b, 0) + 1
            max_degrees.add(max(degree.values()))
        assert len(max_degrees) > 2


# ---------------------------------------------------------------------------
# QueryGenerator
# ---------------------------------------------------------------------------

class TestQueryGenerator:
    def test_generates_requested_relation_count(self):
        generator = QueryGenerator(RandomStreams(42))
        graph = generator.generate(0)
        assert len(graph) == 12
        assert len(graph.edges) == 11

    def test_deterministic_per_seed_and_index(self):
        g1 = QueryGenerator(RandomStreams(42)).generate(3)
        g2 = QueryGenerator(RandomStreams(42)).generate(3)
        assert [r.cardinality for r in g1.relations.values()] == [
            r.cardinality for r in g2.relations.values()
        ]
        assert [e.selectivity for e in g1.edges] == [e.selectivity for e in g2.edges]

    def test_different_indices_differ(self):
        generator = QueryGenerator(RandomStreams(42))
        g1, g2 = generator.generate(0), generator.generate(1)
        assert [r.cardinality for r in g1.relations.values()] != [
            r.cardinality for r in g2.relations.values()
        ]

    def test_cardinalities_in_declared_classes(self):
        generator = QueryGenerator(RandomStreams(7))
        graph = generator.generate(0)
        ranges = [(10_000, 20_000), (100_000, 200_000), (1_000_000, 2_000_000)]
        for relation in graph.relations.values():
            assert any(lo <= relation.cardinality <= hi for lo, hi in ranges)

    def test_shekita_selectivity_range(self):
        """sel(R,S) in [0.5*max/(|R||S|), 1.5*max/(|R||S|)] (Section 5.1.2)."""
        generator = QueryGenerator(RandomStreams(7))
        for index in range(5):
            graph = generator.generate(index)
            for edge in graph.edges:
                r = graph.relation(edge.left).cardinality
                s = graph.relation(edge.right).cardinality
                base = max(r, s) / (r * s)
                assert 0.5 * base <= edge.selectivity <= 1.5 * base

    def test_join_results_comparable_to_larger_input(self):
        """The selectivity calibration keeps |R join S| in [0.5, 1.5]*max."""
        generator = QueryGenerator(RandomStreams(7))
        graph = generator.generate(0)
        for edge in graph.edges:
            r = graph.relation(edge.left).cardinality
            s = graph.relation(edge.right).cardinality
            result = r * s * edge.selectivity
            assert 0.5 * max(r, s) <= result <= 1.5 * max(r, s)

    def test_scale_shrinks_cardinalities(self):
        config = QueryGeneratorConfig(scale=0.01)
        generator = QueryGenerator(RandomStreams(7), config)
        graph = generator.generate(0)
        for relation in graph.relations.values():
            assert relation.cardinality <= 20_000

    def test_generate_many(self):
        generator = QueryGenerator(RandomStreams(1))
        graphs = generator.generate_many(20)
        assert len(graphs) == 20
        names = {tuple(g.names) for g in graphs}
        assert len(names) == 20  # distinct relation name spaces

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            QueryGeneratorConfig(relations_per_query=1)
        with pytest.raises(ValueError):
            QueryGeneratorConfig(scale=0)
        with pytest.raises(ValueError):
            QueryGeneratorConfig(selectivity_low=0)
        with pytest.raises(ValueError):
            QueryGeneratorConfig(size_classes=())

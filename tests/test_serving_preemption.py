"""Preemptive memory management: suspend, spill, resume, account.

The coordinator may resolve a memory-blocked high-priority admission by
suspending a lower-priority query's hash-join state and spilling its
reserved bytes (priced like steal page transfers through the network
and disk models), resuming — with a symmetric reload — once the
preemptor resolves.  The contract under test:

* preemption fires only across a priority gap, only when the blocked
  request has a guaranteed resolution path (a shed deadline or
  ``preemption_shed``), and frees real bytes;
* the victim is frozen while suspended and still completes correctly
  after the resume (no lost work, no deadlock);
* ``QueryPreempted`` / ``QueryResumed`` are logged and the
  ``memory_preemptions`` / ``spill_bytes`` counters account for it;
* with no eligible victim, ``preemption_shed`` sheds the blocked head
  with the ``memory_preempted`` taxonomy reason instead of stalling the
  queue.
"""

import pytest

from repro.serving import (
    BATCH,
    INTERACTIVE,
    AdmissionPolicy,
    MemoryLogger,
    MultiQueryCoordinator,
)
from repro.serving.trace import QueryPreempted, QueryResumed, QueryShedEvent
from repro.sim import MachineConfig
from repro.workloads import pipeline_chain_scenario


def tight_memory_config(memory_per_processor=500_000):
    """1 MB per node against ~600 KB of hash builds per query."""
    return MachineConfig(nodes=2, processors_per_node=2,
                         memory_per_processor=memory_per_processor)


def chain_plan(config, base_tuples=4000):
    plan, _config = pipeline_chain_scenario(
        base_tuples=base_tuples, chain_joins=3, config=config
    )
    return plan


def run_batch_then_interactive(policy, interactive_at=0.12,
                               logger=None):
    """One batch query holding most of node memory, one interactive
    query arriving mid-flight whose demand cannot fit beside it."""
    config = tight_memory_config()
    plan = chain_plan(config)
    coordinator = MultiQueryCoordinator(config, policy=policy,
                                        logger=logger)
    env = coordinator.env
    requests = {}

    def submit():
        requests["batch"] = coordinator.submit(
            plan, service_class=BATCH, query_id=0
        )
        yield env.timeout(interactive_at)
        requests["interactive"] = coordinator.submit(
            plan, service_class=INTERACTIVE, query_id=1
        )
        coordinator.close_arrivals()

    env.process(submit(), name="submit")
    metrics = coordinator.run()
    return metrics, requests


class TestPreemptionFires:
    def test_interactive_preempts_batch_build(self):
        logger = MemoryLogger()
        policy = AdmissionPolicy(max_multiprogramming=4,
                                 memory_preemption=True,
                                 queue_timeout=1.0)
        metrics, requests = run_batch_then_interactive(policy,
                                                       logger=logger)
        assert metrics.completed == 2
        assert metrics.shed_count == 0
        assert metrics.memory_preemptions >= 1
        assert metrics.spill_bytes > 0
        preempted = [e for e in logger.events
                     if isinstance(e, QueryPreempted)]
        resumed = [e for e in logger.events if isinstance(e, QueryResumed)]
        assert preempted and resumed
        for event in preempted:
            assert event.query_id == 0
            assert event.for_query_id == 1
            assert event.spilled_bytes > 0
        # resume happens strictly after the spill, and reloads what the
        # store could re-reserve
        assert resumed[0].time > preempted[0].time
        assert resumed[0].query_id == 0
        # the interactive query was admitted while the batch query was
        # still in flight — the whole point of preempting
        batch = requests["batch"].completion
        interactive = requests["interactive"]
        assert interactive.start_time < batch.completion_time
        # summary surfaces the counters
        summary = metrics.summary()
        assert summary["memory_preemptions"] == metrics.memory_preemptions
        assert summary["spill_bytes"] == metrics.spill_bytes

    def test_greedy_cover_spills_only_what_the_shortfall_needs(self):
        # the victim holds three ~200 KB/node hash tables but the
        # interactive query's shortfall is covered by one of them —
        # spilling (and reloading) the other two would be pure priced
        # overhead, so the greedy cover must stop after the first
        policy = AdmissionPolicy(max_multiprogramming=4,
                                 memory_preemption=True,
                                 queue_timeout=1.0)
        metrics, _ = run_batch_then_interactive(policy)
        assert metrics.memory_preemptions == 1
        assert 0 < metrics.spill_bytes < 800_000

    def test_preemption_is_deterministic(self):
        policy = AdmissionPolicy(max_multiprogramming=4,
                                 memory_preemption=True,
                                 queue_timeout=1.0)
        a, _ = run_batch_then_interactive(policy)
        b, _ = run_batch_then_interactive(policy)
        assert a.summary() == b.summary()

    def test_disabled_by_default(self):
        policy = AdmissionPolicy(max_multiprogramming=4, queue_timeout=1.0)
        metrics, requests = run_batch_then_interactive(policy)
        assert metrics.memory_preemptions == 0
        assert metrics.spill_bytes == 0
        assert metrics.completed == 2
        # without preemption the interactive query waits for the batch
        # query's own memory releases — preemption admits it earlier
        preemptive = AdmissionPolicy(max_multiprogramming=4,
                                     memory_preemption=True,
                                     queue_timeout=1.0)
        _pre_metrics, pre_requests = run_batch_then_interactive(preemptive)
        assert (pre_requests["interactive"].start_time
                < requests["interactive"].start_time)


class TestPreemptionGuards:
    def test_no_priority_gap_no_preemption(self):
        # a BATCH query cannot preempt a BATCH query
        config = tight_memory_config()
        plan = chain_plan(config)
        policy = AdmissionPolicy(max_multiprogramming=4,
                                 memory_preemption=True,
                                 queue_timeout=1.0)
        coordinator = MultiQueryCoordinator(config, policy=policy)
        env = coordinator.env

        def submit():
            coordinator.submit(plan, service_class=BATCH, query_id=0)
            yield env.timeout(0.12)
            coordinator.submit(plan, service_class=BATCH, query_id=1)
            coordinator.close_arrivals()

        env.process(submit(), name="submit")
        metrics = coordinator.run()
        assert metrics.memory_preemptions == 0
        assert metrics.completed == 2

    def test_liveness_guard_refuses_undeadlined_preemption(self):
        # without a shed deadline on the blocked request (and without
        # preemption_shed) there is no guaranteed resolution path for
        # the suspended victim, so the coordinator must not preempt
        policy = AdmissionPolicy(max_multiprogramming=4,
                                 memory_preemption=True)
        metrics, _ = run_batch_then_interactive(policy)
        assert metrics.memory_preemptions == 0
        assert metrics.completed == 2

    def test_preemption_shed_when_no_victim(self):
        # an INTERACTIVE query is running; a memory-blocked BATCH head
        # finds no lower-priority victim and preemption_shed drops it
        # with the taxonomy reason instead of stalling the queue
        logger = MemoryLogger()
        config = tight_memory_config()
        plan = chain_plan(config)
        policy = AdmissionPolicy(max_multiprogramming=4,
                                 memory_preemption=True,
                                 preemption_shed=True,
                                 queue_timeout=1.0)
        coordinator = MultiQueryCoordinator(config, policy=policy,
                                            logger=logger)
        env = coordinator.env

        def submit():
            coordinator.submit(plan, service_class=INTERACTIVE, query_id=0)
            yield env.timeout(0.12)
            coordinator.submit(plan, service_class=BATCH, query_id=1)
            coordinator.close_arrivals()

        env.process(submit(), name="submit")
        metrics = coordinator.run()
        assert metrics.memory_preemptions == 0
        assert metrics.completed == 1
        assert metrics.shed_reason_counts() == {"memory_preempted": 1}
        shed_events = [e for e in logger.events
                       if isinstance(e, QueryShedEvent)]
        assert [e.reason for e in shed_events] == ["memory_preempted"]

"""Scenario-spec tests: lossless round trips, strict decoding, façade
equivalence.

The API's two contracts, pinned here:

* **Losslessness** — ``ScenarioSpec.from_json(spec.to_json()) == spec``
  for arbitrarily nested non-default values, and every shipped example
  scenario is a canonical fixed point of the codec.
* **Equivalence** — ``repro.run(scenario)`` produces *byte-identical*
  metrics to the legacy hand-wired ``WorkloadDriver`` /
  ``QueryExecutor`` paths it subsumes.
"""

import dataclasses
import json
from pathlib import Path

import pytest

import repro
from repro.api import (
    ClusterSpec,
    PlanSpec,
    RunResult,
    ScenarioSpec,
    SpecError,
    build_plans,
    get_path,
    replace_path,
)
from repro.api import run as run_scenario
from repro.api import run_query as run_scenario_query
from repro.catalog.skew import SkewSpec
from repro.engine import QueryExecutor
from repro.engine.params import ExecutionParams
from repro.experiments.config import scaled_execution_params
from repro.serving import (
    BATCH,
    INTERACTIVE,
    AdmissionPolicy,
    ArrivalSpec,
    ServiceClass,
    WorkloadDriver,
    WorkloadSpec,
)
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkParams
from repro.workloads import pipeline_chain_scenario, two_node_join_scenario

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


def _rich_scenario() -> ScenarioSpec:
    """A spec exercising non-default values at every nesting level."""
    interactive = dataclasses.replace(INTERACTIVE, latency_slo=0.25,
                                      max_multiprogramming=3)
    batch = dataclasses.replace(BATCH, queue_timeout=0.5,
                                memory_headroom=0.6)
    params = scaled_execution_params(
        scale=0.02, skew=SkewSpec.uniform_redistribution(0.7), seed=11,
        cpu_discipline="priority", disk_discipline="fair",
        charge_quantum="batched",
    )
    params = dataclasses.replace(
        params,
        network=NetworkParams(transmission_delay=1e-5, bandwidth=8e6),
        net_discipline="priority",
    )
    return ScenarioSpec(
        cluster=MachineConfig(nodes=2, processors_per_node=3),
        params=params,
        workload=WorkloadSpec(
            queries=9,
            arrival=ArrivalSpec(kind="bursty", rate=120.0, burst_size=5.0,
                                burst_speedup=12.0),
            strategy="FP",
            policy=AdmissionPolicy(max_multiprogramming=3,
                                   memory_headroom=0.7,
                                   queue_timeout=2.5,
                                   deadline_shedding=True),
            classes=((interactive, 1.0), (batch, 3.0)),
            seed=5,
        ),
        plans=PlanSpec(kind="io_heavy", base_tuples=900),
        mode="serving",
        label="rich",
    )


class TestRoundTrip:
    def test_default_spec_round_trips(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_rich_nested_spec_round_trips(self):
        spec = _rich_scenario()
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_preserves_nested_leaf_values(self):
        spec = ScenarioSpec.from_json(_rich_scenario().to_json())
        assert spec.params.network.bandwidth == 8e6
        assert spec.params.skew.redistribution == 0.7
        assert spec.workload.classes[0][0].latency_slo == 0.25
        assert spec.workload.classes[1][1] == 3.0
        assert spec.workload.policy.queue_timeout == 2.5

    def test_every_example_scenario_round_trips(self):
        paths = sorted(SCENARIO_DIR.glob("*.json"))
        assert paths, "no example scenarios shipped"
        for path in paths:
            text = path.read_text()
            spec = ScenarioSpec.from_json(text)
            assert ScenarioSpec.from_json(spec.to_json()) == spec, path.name
            # The shipped files are canonical: decode -> encode is identity.
            assert spec.to_json() == text, path.name

    def test_floats_survive_exactly(self):
        spec = replace_path(ScenarioSpec(), "params.steal_cooldown", 0.1 + 0.2)
        decoded = ScenarioSpec.from_json(spec.to_json())
        assert decoded.params.steal_cooldown == spec.params.steal_cooldown


class TestStrictDecoding:
    def test_unknown_top_level_key(self):
        data = ScenarioSpec().to_dict()
        data["extra"] = 1
        with pytest.raises(SpecError, match="unknown key.*extra"):
            ScenarioSpec.from_dict(data)

    def test_unknown_nested_key_names_path(self):
        data = ScenarioSpec().to_dict()
        data["workload"]["arrival"]["ratee"] = 10.0
        with pytest.raises(SpecError, match=r"\$\.workload\.arrival.*ratee"):
            ScenarioSpec.from_dict(data)

    def test_wrong_scalar_type(self):
        data = ScenarioSpec().to_dict()
        data["params"]["batch_size"] = "lots"
        with pytest.raises(SpecError, match=r"\$\.params\.batch_size"):
            ScenarioSpec.from_dict(data)

    def test_null_in_non_optional_field(self):
        data = ScenarioSpec().to_dict()
        data["workload"]["queries"] = None
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict(data)

    def test_wrong_tuple_arity(self):
        spec = _rich_scenario()
        data = spec.to_dict()
        data["workload"]["classes"][0].append(1.0)
        with pytest.raises(SpecError, match="expected 2 entries"):
            ScenarioSpec.from_dict(data)

    def test_validation_runs_on_decode(self):
        data = ScenarioSpec().to_dict()
        data["workload"]["arrival"]["rate"] = -1.0
        with pytest.raises(ValueError, match="rate must be positive"):
            ScenarioSpec.from_dict(data)

    def test_invalid_json_text(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            ScenarioSpec.from_json("{not json")


class TestSpecValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            ScenarioSpec(mode="batch")

    def test_unknown_plan_kind(self):
        with pytest.raises(ValueError, match="unknown plan kind"):
            PlanSpec(kind="mystery")

    def test_workload_strategy_validated(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            WorkloadSpec(strategy="QP")

    def test_arrival_rate_validated_for_closed_loop_too(self):
        with pytest.raises(ValueError, match="rate must be positive"):
            ArrivalSpec(kind="closed", rate=0.0)

    def test_class_fractions_must_be_finite(self):
        with pytest.raises(ValueError, match="positive and finite"):
            WorkloadSpec(classes=((ServiceClass("x"), float("nan")),))

    def test_replace_path_reruns_validators(self):
        with pytest.raises(ValueError, match="batch_size"):
            replace_path(ScenarioSpec(), "params.batch_size", 0)

    def test_path_helpers(self):
        spec = replace_path(ScenarioSpec(), "params.cpu_discipline", "fair")
        assert get_path(spec, "params.cpu_discipline") == "fair"
        with pytest.raises(SpecError, match="no field"):
            replace_path(spec, "params.nonsense", 1)
        with pytest.raises(SpecError, match="no field"):
            get_path(spec, "workload.arrival.nope")


class TestPlanSpecBuild:
    def test_two_node_requires_two_nodes(self):
        spec = PlanSpec(kind="two_node")
        with pytest.raises(ValueError, match="2-node cluster"):
            spec.build(MachineConfig(nodes=4, processors_per_node=2))

    def test_build_matches_scenario_factories(self):
        cluster = MachineConfig(nodes=2, processors_per_node=2)
        plans = PlanSpec(kind="pipeline_chain", base_tuples=700).build(cluster)
        expected, _config = pipeline_chain_scenario(
            nodes=2, processors_per_node=2, base_tuples=700
        )
        assert len(plans) == 1
        assert plans[0].label == expected.label

    def test_build_plans_memoized(self):
        scenario = ScenarioSpec(
            cluster=MachineConfig(nodes=2, processors_per_node=2),
            plans=PlanSpec(kind="pipeline_chain", base_tuples=600),
        )
        assert build_plans(scenario) is build_plans(scenario)

    def test_workload_mix_respects_plan_count(self):
        cluster = MachineConfig(nodes=2, processors_per_node=2)
        spec = PlanSpec(kind="workload_mix", plan_count=2,
                        workload_queries=3, scale=0.01, seed=4)
        assert len(spec.build(cluster)) == 2

    def test_cluster_machine_knobs_reach_plan_compilation(self):
        # A non-default page size in the scenario's cluster must be the
        # page size the plans compile against, not the factory default.
        cluster = MachineConfig(nodes=2, processors_per_node=2,
                                page_size=4096)
        plans = PlanSpec(kind="pipeline_chain", base_tuples=700).build(cluster)
        assert plans[0].placements["B0"].page_size == 4096
        plans = PlanSpec(kind="two_node").build(cluster)
        assert plans[0].placements["R"].page_size == 4096


def _serving_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        cluster=MachineConfig(nodes=2, processors_per_node=2),
        params=scaled_execution_params(
            skew=SkewSpec.uniform_redistribution(0.8), seed=7
        ),
        workload=WorkloadSpec(
            queries=6,
            arrival=ArrivalSpec(kind="closed", population=3),
            policy=AdmissionPolicy(max_multiprogramming=3),
            classes=((INTERACTIVE, 1.0), (BATCH, 2.0)),
            seed=13,
        ),
        plans=PlanSpec(kind="pipeline_chain", base_tuples=800),
    )


class TestFacadeEquivalence:
    def test_serving_run_matches_legacy_driver_byte_for_byte(self):
        scenario = _serving_scenario()
        facade = run_scenario(scenario)
        plan, config = pipeline_chain_scenario(
            nodes=2, processors_per_node=2, base_tuples=800
        )
        legacy = WorkloadDriver(
            [plan], config, scenario.workload, scenario.params
        ).run()
        assert repr(facade.metrics.summary()) == repr(legacy.metrics.summary())

    def test_single_run_matches_query_executor(self):
        scenario = ScenarioSpec(
            cluster=MachineConfig(nodes=2, processors_per_node=2),
            params=scaled_execution_params(seed=3),
            workload=WorkloadSpec(queries=1, strategy="FP"),
            plans=PlanSpec(kind="two_node", r_tuples=1500, s_tuples=3000),
            mode="single",
        )
        facade = run_scenario(scenario)
        plan, config = two_node_join_scenario(
            r_tuples=1500, s_tuples=3000, processors_per_node=2
        )
        legacy = QueryExecutor(
            plan, config, strategy="FP", params=scenario.params
        ).run()
        assert facade.execution.response_time == legacy.response_time
        assert facade.metrics.activations_processed == \
            legacy.metrics.activations_processed

    def test_run_query_facade_and_top_level_entry_points(self):
        scenario = ScenarioSpec(
            cluster=MachineConfig(nodes=2, processors_per_node=2),
            params=scaled_execution_params(seed=3),
            workload=WorkloadSpec(queries=1),
            plans=PlanSpec(kind="pipeline_chain", base_tuples=600),
        )
        direct = run_scenario_query(scenario)
        via_repro = repro.run_query(scenario)
        assert direct.response_time == via_repro.response_time
        with pytest.raises(TypeError, match="no machine config"):
            repro.run_query(scenario, MachineConfig())
        with pytest.raises(TypeError, match="requires a MachineConfig"):
            repro.run_query(object())

    def test_explicit_plans_override(self):
        scenario = _serving_scenario()
        plan, _config = pipeline_chain_scenario(
            nodes=2, processors_per_node=2, base_tuples=800
        )
        overridden = run_scenario(scenario, plans=[plan])
        declared = run_scenario(scenario)
        assert repr(overridden.metrics.summary()) == \
            repr(declared.metrics.summary())

    def test_run_result_shape(self):
        result = run_scenario(_serving_scenario())
        assert isinstance(result, RunResult)
        assert result.execution is None
        assert result.workload is not None
        assert "workload [" in result.summary()

    def test_deterministic_across_runs(self):
        scenario = _serving_scenario()
        first = run_scenario(scenario).metrics.summary()
        second = run_scenario(scenario).metrics.summary()
        assert repr(first) == repr(second)


class TestDefaultParamsStayDefault:
    def test_scenario_defaults_equal_engine_defaults(self):
        # A default ScenarioSpec must not drift from the engine's own
        # defaults — otherwise "empty scenario" silently means something.
        assert ScenarioSpec().params == ExecutionParams()
        assert ScenarioSpec().cluster == ClusterSpec()
        assert ScenarioSpec().cluster.machines == MachineConfig()
        assert ScenarioSpec().workload == WorkloadSpec()

    def test_bare_machine_config_coerces_to_static_cluster(self):
        # Back-compat: cluster=MachineConfig(...) wraps into ClusterSpec.
        spec = ScenarioSpec(cluster=MachineConfig(nodes=2,
                                                  processors_per_node=2))
        assert isinstance(spec.cluster, ClusterSpec)
        assert spec.cluster.static
        assert spec.cluster.machines.nodes == 2

    def test_encode_rejects_exotic_values(self):
        from repro.api.serde import encode

        with pytest.raises(SpecError, match="cannot serialize"):
            encode(object())

    def test_pep604_optional_fields_decode(self):
        # Future knobs may use `X | None` instead of Optional[X]; the
        # generic codec must treat both union spellings identically.
        from repro.api.serde import decode, encode

        @dataclasses.dataclass(frozen=True)
        class Knobs:
            cap: float | None = None
            name: "str | None" = None

        assert decode(Knobs, {"cap": 2.5, "name": "x"}) == Knobs(2.5, "x")
        assert decode(Knobs, encode(Knobs())) == Knobs()

    def test_summary_json_encodable(self):
        result = run_scenario(_serving_scenario())
        json.dumps(result.metrics.summary(), default=list)

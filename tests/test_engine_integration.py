"""Integration tests: whole plans through the engine, all strategies.

These tests assert the *semantic* invariants of an execution —
conservation of tuples through the pipeline, termination, determinism —
and the paper's qualitative relationships (SP <= DP <= FP on
shared-memory; stealing only when starving; skew resilience).
"""

import pytest

from repro.catalog import Relation, SkewSpec
from repro.engine import ExecutionParams, QueryExecutor, StrategyError
from repro.optimizer import BaseNode, JoinNode, compile_plan
from repro.query import JoinEdge, QueryGraph
from repro.sim import MachineConfig
from repro.workloads import pipeline_chain_scenario, two_node_join_scenario


def single_join_plan(config, r=2000, s=4000, label="t"):
    """R join S with |result| = |S|."""
    sel = 1.0 / r
    graph = QueryGraph(
        [Relation("R", r), Relation("S", s)], [JoinEdge("R", "S", sel)]
    )
    tree = JoinNode(BaseNode(graph.relation("R")), BaseNode(graph.relation("S")), sel)
    return compile_plan(graph, tree, config, label=label)


def bushy_plan(config, label="bushy"):
    """(R join S) join (T join U), all intermediate sizes controlled."""
    cards = {"R": 1000, "S": 2000, "T": 1500, "U": 2500}
    relations = [Relation(n, c) for n, c in cards.items()]
    sel_rs = 1.0 / cards["R"]   # |RS| = |S| = 2000
    sel_tu = 1.0 / cards["T"]   # |TU| = |U| = 2500
    sel_top = 1.0 / cards["S"]  # |RS join TU| = 2000 * 2500 / 2000 = 2500
    graph = QueryGraph(relations, [
        JoinEdge("R", "S", sel_rs),
        JoinEdge("S", "T", sel_top),
        JoinEdge("T", "U", sel_tu),
    ])
    j1 = JoinNode(BaseNode(graph.relation("R")), BaseNode(graph.relation("S")), sel_rs)
    j2 = JoinNode(BaseNode(graph.relation("T")), BaseNode(graph.relation("U")), sel_tu)
    tree = JoinNode(j1, j2, sel_top)
    return compile_plan(graph, tree, config, label=label)


# ---------------------------------------------------------------------------
# Correctness: conservation and termination
# ---------------------------------------------------------------------------

class TestConservation:
    @pytest.mark.parametrize("strategy", ["DP", "FP", "SP"])
    def test_single_join_result_cardinality(self, strategy):
        config = MachineConfig(nodes=1, processors_per_node=4)
        plan = single_join_plan(config)
        result = QueryExecutor(plan, config, strategy=strategy).run()
        # |R join S| = 2000 * 4000 * (1/2000) = 4000.
        assert result.metrics.result_tuples == pytest.approx(4000, rel=0.01)

    @pytest.mark.parametrize("strategy", ["DP", "FP"])
    def test_single_join_multi_node(self, strategy):
        config = MachineConfig(nodes=3, processors_per_node=2)
        plan = single_join_plan(config)
        result = QueryExecutor(plan, config, strategy=strategy).run()
        assert result.metrics.result_tuples == pytest.approx(4000, rel=0.01)
        assert result.metrics.tuples_scanned == 6000

    @pytest.mark.parametrize("strategy", ["DP", "FP", "SP"])
    def test_bushy_tree_cardinalities(self, strategy):
        config = MachineConfig(nodes=1, processors_per_node=4)
        plan = bushy_plan(config)
        result = QueryExecutor(plan, config, strategy=strategy).run()
        root = plan.operators.op(plan.operators.root_id)
        assert result.metrics.result_tuples == pytest.approx(
            root.output_cardinality, rel=0.02
        )

    def test_every_base_tuple_scanned_exactly_once(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = bushy_plan(config)
        result = QueryExecutor(plan, config, strategy="DP").run()
        expected = sum(r.cardinality for r in plan.graph.relations.values())
        assert result.metrics.tuples_scanned == expected

    def test_build_counts_match_build_inputs(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = bushy_plan(config)
        result = QueryExecutor(plan, config, strategy="DP").run()
        expected = sum(op.input_cardinality for op in plan.operators.builds())
        assert result.metrics.tuples_built == pytest.approx(expected, rel=0.02)

    def test_all_operators_terminate_with_end_times(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = bushy_plan(config)
        result = QueryExecutor(plan, config, strategy="DP").run()
        assert set(result.metrics.op_end_times) == {
            op.op_id for op in plan.operators
        }
        root_end = result.metrics.op_end_times[plan.operators.root_id]
        assert root_end == result.response_time

    def test_termination_order_respects_schedule(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = bushy_plan(config)
        result = QueryExecutor(plan, config, strategy="DP").run()
        order = sorted(result.metrics.op_end_times,
                       key=result.metrics.op_end_times.get)
        assert plan.schedule.is_consistent_linearization(order)


class TestDeterminism:
    def test_same_seed_same_everything(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = bushy_plan(config)
        params = ExecutionParams(seed=7,
                                 skew=SkewSpec.uniform_redistribution(0.5))
        a = QueryExecutor(plan, config, strategy="DP", params=params).run()
        b = QueryExecutor(plan, config, strategy="DP", params=params).run()
        assert a.response_time == b.response_time
        assert a.metrics.result_tuples == b.metrics.result_tuples
        assert a.metrics.messages_sent == b.metrics.messages_sent
        assert a.metrics.steal_rounds == b.metrics.steal_rounds


# ---------------------------------------------------------------------------
# Strategy relationships (the paper's qualitative results)
# ---------------------------------------------------------------------------

class TestStrategyRelationships:
    def test_sp_requires_single_node(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = single_join_plan(config)
        with pytest.raises(StrategyError):
            QueryExecutor(plan, config, strategy="SP").run()

    def test_unknown_strategy_rejected(self):
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = single_join_plan(config)
        with pytest.raises(StrategyError):
            QueryExecutor(plan, config, strategy="XX").run()

    def test_sp_at_most_dp_at_most_fp_shared_memory(self):
        """Figure 6's ordering: SP <= DP <= FP (no skew, one node)."""
        config = MachineConfig(nodes=1, processors_per_node=8)
        plan = bushy_plan(config)
        times = {
            s: QueryExecutor(plan, config, strategy=s).run().response_time
            for s in ("SP", "DP", "FP")
        }
        assert times["SP"] <= times["DP"] * 1.02  # SP within/below DP
        assert times["DP"] <= times["FP"]

    def test_no_stealing_on_single_node(self):
        config = MachineConfig(nodes=1, processors_per_node=4)
        plan = bushy_plan(config)
        result = QueryExecutor(plan, config, strategy="DP").run()
        assert result.metrics.steal_rounds == 0
        assert result.metrics.loadbalance_bytes == 0

    def test_no_stealing_without_skew_observed(self):
        """Section 5.3: 'Without skew ... global load balancing is almost
        never used.'"""
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = bushy_plan(config)
        result = QueryExecutor(plan, config, strategy="DP").run()
        # A handful of end-of-operator steals are tolerable; traffic must
        # be negligible next to the pipeline traffic.
        assert result.metrics.loadbalance_bytes <= 0.1 * max(
            1, result.metrics.pipeline_bytes
        )

    def test_global_lb_can_be_disabled(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = bushy_plan(config)
        params = ExecutionParams(enable_global_lb=False,
                                 skew=SkewSpec.uniform_redistribution(0.8))
        result = QueryExecutor(plan, config, strategy="DP", params=params).run()
        assert result.metrics.steal_rounds == 0
        assert result.metrics.result_tuples > 0

    def test_dp_beats_fp_under_skew_hierarchical(self):
        """Figure 10's direction: DP < FP with skew on a multi-node machine."""
        config = MachineConfig(nodes=2, processors_per_node=4)
        plan = bushy_plan(config)
        params = ExecutionParams(skew=SkewSpec.uniform_redistribution(0.6))
        dp = QueryExecutor(plan, config, strategy="DP", params=params).run()
        fp = QueryExecutor(plan, config, strategy="FP", params=params).run()
        assert dp.response_time < fp.response_time

    def test_dp_idle_lower_than_fp(self):
        """Section 5.3: 'processor idle time with DP is almost null whereas
        it is quite significant with FP'."""
        config = MachineConfig(nodes=2, processors_per_node=4)
        plan = bushy_plan(config)
        params = ExecutionParams(skew=SkewSpec.uniform_redistribution(0.6))
        dp = QueryExecutor(plan, config, strategy="DP", params=params).run()
        fp = QueryExecutor(plan, config, strategy="FP", params=params).run()
        assert dp.metrics.idle_fraction() < fp.metrics.idle_fraction()


# ---------------------------------------------------------------------------
# Scenarios from the paper
# ---------------------------------------------------------------------------

class TestScenarios:
    def test_two_node_example_runs(self):
        plan, config = two_node_join_scenario()
        result = QueryExecutor(plan, config, strategy="DP").run()
        # |R join S| = |S| by construction.
        assert result.metrics.result_tuples == pytest.approx(8000, rel=0.01)

    def test_two_node_example_homes(self):
        plan, config = two_node_join_scenario()
        scans = {op.relation.name: op for op in plan.operators.scans()}
        assert plan.homes[scans["R"].op_id] == (0,)
        assert plan.homes[scans["S"].op_id] == (1,)
        for probe in plan.operators.probes():
            assert plan.homes[probe.op_id] == (1,)

    def test_two_node_example_ships_r_to_node_b(self):
        plan, config = two_node_join_scenario()
        result = QueryExecutor(plan, config, strategy="DP").run()
        # All R tuples cross the network into the build at node B.
        assert result.metrics.pipeline_bytes >= 4000 * 100

    def test_pipeline_chain_shape(self):
        plan, config = pipeline_chain_scenario(nodes=2, processors_per_node=2,
                                               base_tuples=500)
        longest = max(plan.operators.chains, key=len)
        assert len(longest) == 5  # scan + 4 probes

    def test_pipeline_chain_executes(self):
        plan, config = pipeline_chain_scenario(nodes=2, processors_per_node=2,
                                               base_tuples=500)
        result = QueryExecutor(plan, config, strategy="DP").run()
        assert result.metrics.result_tuples == pytest.approx(500, rel=0.05)


# ---------------------------------------------------------------------------
# Skew behaviour (Figure 9's direction)
# ---------------------------------------------------------------------------

class TestSkewResilience:
    def test_dp_degrades_gently_under_skew(self):
        config = MachineConfig(nodes=1, processors_per_node=8)
        plan = bushy_plan(config)
        base = QueryExecutor(plan, config, strategy="DP").run().response_time
        skewed = QueryExecutor(
            plan, config, strategy="DP",
            params=ExecutionParams(skew=SkewSpec.uniform_redistribution(0.8)),
        ).run().response_time
        # Figure 9: degradation stays small (we allow a loose 40% here; the
        # experiment suite measures the real curve).
        assert skewed <= base * 1.4

    def test_skew_changes_nothing_semantically(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = bushy_plan(config)
        plain = QueryExecutor(plan, config, strategy="DP").run()
        skewed = QueryExecutor(
            plan, config, strategy="DP",
            params=ExecutionParams(skew=SkewSpec.uniform_redistribution(1.0)),
        ).run()
        assert skewed.metrics.result_tuples == pytest.approx(
            plain.metrics.result_tuples, rel=0.02
        )

"""Property tests for macro-charge batching (``charge_quantum="batched"``).

The three guarantees the batched quantum rests on:

* **FIFO bit-identity**: a single-query run (every figure's building
  block) produces *bit-identical* results in batched and tuple mode —
  same response time float, same counts, same per-resource waits — for
  DP, FP and SP alike.  The accumulator replays the per-component
  timeout additions into an absolute completion instant and
  ``Resource.use_until`` lands the uncontended FIFO charge on that exact
  float, so merging N charges into one is not an approximation.
* **Service conservation under preemptive scheduling**: under the fair
  and priority disciplines a macro-charge may be split mid-flight; the
  machine-wide processor busy time still equals the sum of every
  query's thread busy time — no banked service is lost or invented.
* **Exact per-class wait partitions**: the per-class resource-wait
  breakdown (``class_resource_waits``) still partitions the workload
  totals exactly — per resource, the class sums reconstruct the total.

Plus the parallel runner's contract: fanning sweep cells across worker
processes returns the identical result object the sequential run builds.
"""

import dataclasses

import pytest

from repro.catalog.skew import SkewSpec
from repro.engine import QueryExecutor
from repro.experiments.config import ExperimentOptions, scaled_execution_params
from repro.serving import (AdmissionPolicy, ArrivalSpec, BATCH, INTERACTIVE,
                           WorkloadDriver, WorkloadSpec)
from repro.workloads.scenarios import (pipeline_chain_scenario,
                                       two_node_join_scenario)


def _metric_fingerprint(result):
    """Every observable a figure reads, as one comparable tuple."""
    m = result.metrics
    return (
        result.response_time,
        m.result_tuples,
        m.activations_processed,
        m.tuples_scanned,
        m.thread_busy_time,
        m.cpu_contention_time,
        m.disk_wait_time,
        m.net_wait_time,
        m.bytes_sent,
        m.messages_sent,
        m.steal_rounds,
        m.steals_succeeded,
        m.suspensions,
        m.foreign_queue_consumptions,
        m.memory_high_watermark,
    )


def _single_query(strategy, scenario_kwargs, quantum, scenario):
    plan, config = scenario(**scenario_kwargs)
    params = scaled_execution_params(
        skew=SkewSpec.uniform_redistribution(0.8), seed=7,
        charge_quantum=quantum,
    )
    return QueryExecutor(plan, config, strategy=strategy, params=params).run()


class TestBatchedFIFOBitIdentity:
    @pytest.mark.parametrize("strategy,scenario,kwargs", [
        ("DP", pipeline_chain_scenario, {}),
        ("FP", pipeline_chain_scenario, {}),
        ("DP", two_node_join_scenario, {}),
        ("FP", two_node_join_scenario, {}),
        ("SP", pipeline_chain_scenario,
         {"nodes": 1, "processors_per_node": 8}),
    ])
    def test_batched_equals_tuple_bit_for_bit(self, strategy, scenario,
                                              kwargs):
        """Figure outputs are byte-identical because every observable —
        including the raw response-time float — is bit-identical."""
        tuple_run = _single_query(strategy, kwargs, "tuple", scenario)
        batched_run = _single_query(strategy, kwargs, "batched", scenario)
        assert _metric_fingerprint(tuple_run) == \
            _metric_fingerprint(batched_run)

    def test_batched_default_is_tuple(self):
        from repro.engine.params import ExecutionParams
        assert ExecutionParams().charge_quantum == "tuple"
        with pytest.raises(ValueError):
            ExecutionParams(charge_quantum="page")


def _class_workload(cpu_discipline: str, quantum: str, mpl: int = 4,
                    queries: int = 8):
    plan, config = pipeline_chain_scenario(nodes=2, processors_per_node=2,
                                           base_tuples=1000)
    params = scaled_execution_params(
        skew=SkewSpec.uniform_redistribution(0.8), seed=11,
        cpu_discipline=cpu_discipline, charge_quantum=quantum,
    )
    interactive = dataclasses.replace(INTERACTIVE, latency_slo=0.3)
    spec = WorkloadSpec(
        queries=queries,
        arrival=ArrivalSpec(kind="closed", population=mpl),
        policy=AdmissionPolicy(max_multiprogramming=mpl),
        classes=((interactive, 1.0), (BATCH, 2.0)),
        seed=11,
    )
    return WorkloadDriver(plan, config, spec, params)


class TestBatchedPreemptionConservation:
    @pytest.mark.parametrize("discipline", ["fair", "priority"])
    def test_machine_busy_equals_charged_thread_time(self, discipline):
        """Splitting macro-charges at preemption/grant boundaries loses
        no service: processor busy time == sum of thread busy time."""
        driver = _class_workload(discipline, "batched")
        coordinator = driver.build_coordinator()
        metrics = coordinator.run()
        charged = sum(
            c.result.metrics.thread_busy_time for c in metrics.completions
        )
        machine_busy = sum(
            processor.busy_time
            for row in coordinator.substrate.processors for processor in row
        )
        assert machine_busy == pytest.approx(charged, rel=1e-9)
        # Preemption actually happened under the priority discipline —
        # the conservation above covered split macro-charges.
        if discipline == "priority":
            assert any(
                processor.preemptions > 0
                for row in coordinator.substrate.processors
                for processor in row
            )

    @pytest.mark.parametrize("discipline", ["fair", "priority"])
    def test_total_work_matches_tuple_mode(self, discipline):
        """Mode changes granularity, not demand: the whole workload
        charges the same total CPU seconds in both quantums (schedule
        interleavings may differ; the work may not)."""
        totals = {}
        for quantum in ("tuple", "batched"):
            metrics = _class_workload(discipline, quantum).run().metrics
            totals[quantum] = sum(
                c.result.metrics.thread_busy_time for c in metrics.completions
            )
        assert totals["batched"] == pytest.approx(totals["tuple"], rel=0.02)


class TestBatchedWaitPartitions:
    def test_class_resource_waits_partition_totals_exactly(self):
        """Per resource, the per-class wait sums reconstruct the
        workload totals — macro-charges never mis-attribute queueing."""
        driver = _class_workload("priority", "batched", mpl=6, queries=10)
        metrics = driver.run().metrics
        totals = {
            "cpu": metrics.total_cpu_contention(),
            "disk": metrics.total_disk_wait(),
            "net": metrics.total_net_wait(),
        }
        for resource, total in totals.items():
            by_class = sum(
                metrics.class_resource_waits(name)[resource]
                * len(metrics.completions_of(name))
                for name in metrics.class_names()
            )
            assert by_class == pytest.approx(total, rel=1e-9, abs=1e-12)
        # The run actually queued somewhere, or the partition is vacuous.
        assert totals["cpu"] > 0.0


class TestParallelRunnerIdentity:
    def test_parallel_cells_identical_to_sequential(self):
        from repro.experiments import service_class_sweep
        options = ExperimentOptions.quick()
        kwargs = dict(mpl_levels=(4,), queries_per_cell=6, nodes=2,
                      processors_per_node=2, base_tuples=800,
                      io_sweep=False, net_sweep=False)
        sequential = service_class_sweep.run(options, **kwargs)
        parallel = service_class_sweep.run(options, processes=2, **kwargs)
        assert sequential == parallel

    def test_parallel_map_degenerate_cases(self):
        from repro.experiments.parallel import parallel_map, resolve_processes
        assert parallel_map(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]
        assert parallel_map(lambda x: x * x, [], processes=0) == []
        assert resolve_processes(None) == 1
        assert resolve_processes(3) == 3
        assert resolve_processes(0) >= 1

"""End-to-end I/O scheduling through the serving stack.

The serving-side contract of the completed (CPU + disk + network)
discipline layer:

* a workload whose bottleneck is the disks shows the interference in the
  *disk* column of the per-resource queueing breakdown — CPU contention
  stays zero when the CPU is idle (mixed-resource contention is
  attributed to the right resource, not smeared);
* the disk discipline differentiates service classes end to end: on an
  I/O-heavy mix at MPL 8, ``disk_discipline="priority"`` improves the
  interactive p95 over FIFO disks while batch throughput stays within
  20% (the acceptance ordering of the I/O-heavy sweep);
* discipline choices are machine-wide: per-query overrides of
  ``disk_discipline``/``net_discipline`` are rejected at submission,
  like ``cpu_discipline`` overrides;
* shed queries resolve their ``done`` event with an explicit
  :class:`~repro.engine.metrics.QueryShed` (not ``None``), and finished
  queries with their :class:`~repro.engine.metrics.QueryCompletion`;
* runs stay deterministic under every disk/net discipline: same seed,
  byte-identical ``WorkloadMetrics.summary()``.
"""

import dataclasses

import pytest

from repro.engine import ExecutionParams
from repro.engine.metrics import QueryCompletion, QueryShed
from repro.experiments.config import scaled_execution_params
from repro.experiments.service_class_sweep import (io_heavy_params,
                                                   io_heavy_plans)
from repro.optimizer.cost import CostParams
from repro.serving import (
    BATCH,
    INTERACTIVE,
    AdmissionPolicy,
    ArrivalSpec,
    MultiQueryCoordinator,
    ServiceClass,
    WorkloadDriver,
    WorkloadSpec,
)
from repro.sim import MachineConfig
from repro.sim.disk import DiskParams
from repro.sim.network import NetworkParams
from repro.workloads import pipeline_chain_scenario


# ---------------------------------------------------------------------------
# Mixed-resource contention: the breakdown points at the right resource
# ---------------------------------------------------------------------------

class TestMixedResourceContention:
    def test_saturated_disks_with_idle_cpu_show_only_disk_waits(self):
        """CPU idle + disks saturated => nonzero disk queueing delay and
        *zero* CPU contention in the workload metrics.

        Every instruction cost is zeroed, so the CPU is literally idle
        and all service is disk transfers; two concurrent queries'
        streams interleave on the shared arms, which is what makes a
        disk queue (a lone sequential stream is hidden by the prefetch
        cache, not queued).
        """
        plan, config = pipeline_chain_scenario(
            nodes=1, processors_per_node=2, base_tuples=3000
        )
        idle_cpu = CostParams(
            scan_instructions_per_tuple=0,
            build_instructions_per_tuple=0,
            probe_instructions_per_tuple=0,
            result_instructions_per_tuple=0,
            activation_overhead_instructions=0,
            foreign_queue_penalty_instructions=0,
        )
        params = ExecutionParams(
            cost=idle_cpu, signal_instructions=0,
            disk=DiskParams(async_init_instructions=0), seed=3,
        )
        spec = WorkloadSpec(
            queries=2, arrival=ArrivalSpec(kind="closed", population=2),
            policy=AdmissionPolicy(max_multiprogramming=2), seed=3,
        )
        metrics = WorkloadDriver(plan, config, spec, params).run().metrics
        assert metrics.total_disk_wait() > 0.0
        assert metrics.total_cpu_contention() == 0.0
        assert metrics.total_net_wait() == 0.0  # single node: no traffic
        waits = metrics.per_class_summary()["default"]["resource_waits"]
        assert waits["disk"] > 0.0
        assert waits["cpu"] == 0.0

    def test_per_query_disk_waits_sum_to_the_machine_total(self):
        """Attribution exactness: the per-query disk queueing delays (one
        ChargeTag key per query) partition the machine-wide disk wait —
        nothing is lost and nothing is double-counted."""
        plan, config = pipeline_chain_scenario(
            nodes=1, processors_per_node=2, base_tuples=3000
        )
        idle_cpu = CostParams(
            scan_instructions_per_tuple=0,
            build_instructions_per_tuple=0,
            probe_instructions_per_tuple=0,
            result_instructions_per_tuple=0,
            activation_overhead_instructions=0,
            foreign_queue_penalty_instructions=0,
        )
        params = ExecutionParams(
            cost=idle_cpu, signal_instructions=0,
            disk=DiskParams(async_init_instructions=0), seed=3,
        )
        spec = WorkloadSpec(
            queries=3, arrival=ArrivalSpec(kind="closed", population=2),
            policy=AdmissionPolicy(max_multiprogramming=2), seed=3,
        )
        driver = WorkloadDriver(plan, config, spec, params)
        coordinator = driver.build_coordinator()
        metrics = coordinator.run()
        assert metrics.completed == 3
        machine_wait = sum(
            disk.wait_time
            for row in coordinator.substrate.disks for disk in row
        )
        assert machine_wait > 0.0
        assert metrics.total_disk_wait() == pytest.approx(machine_wait)


# ---------------------------------------------------------------------------
# End-to-end disk-discipline differentiation (the I/O-heavy acceptance)
# ---------------------------------------------------------------------------

class TestDiskDisciplineDifferentiation:
    def run_io_mix(self, disk_discipline, mpl=8, queries=12, seed=1996):
        plans, config = io_heavy_plans(
            nodes=2, processors_per_node=2, base_tuples=1000
        )
        interactive = dataclasses.replace(INTERACTIVE, latency_slo=0.5)
        from repro.experiments.config import ExperimentOptions
        params = io_heavy_params(
            ExperimentOptions(seed=seed), disk_discipline=disk_discipline
        )
        spec = WorkloadSpec(
            queries=queries,
            arrival=ArrivalSpec(kind="closed", population=mpl),
            policy=AdmissionPolicy(max_multiprogramming=mpl),
            classes=((interactive, 1.0), (BATCH, 2.0)),
            seed=seed,
        )
        return WorkloadDriver(plans, config, spec, params).run().metrics

    def test_priority_disks_improve_interactive_p95_at_mpl8(self):
        fifo = self.run_io_mix("fifo")
        prio = self.run_io_mix("priority")
        assert prio.class_latency_percentile("interactive", 95.0) < \
            fifo.class_latency_percentile("interactive", 95.0)
        # Batch pays at most 20% throughput: reordering, not extra work.
        assert prio.class_throughput("batch") >= \
            0.8 * fifo.class_throughput("batch")
        # The saved latency came out of the interactive *disk* queue.
        assert prio.class_resource_waits("interactive")["disk"] < \
            fifo.class_resource_waits("interactive")["disk"]

    def test_fair_disks_also_help_the_weighted_class(self):
        fifo = self.run_io_mix("fifo")
        fair = self.run_io_mix("fair")
        assert fair.class_latency_percentile("interactive", 95.0) < \
            fifo.class_latency_percentile("interactive", 95.0)

    @pytest.mark.parametrize("discipline", ["fifo", "fair", "priority"])
    def test_every_disk_discipline_is_deterministic(self, discipline):
        a = self.run_io_mix(discipline, queries=8)
        b = self.run_io_mix(discipline, queries=8)
        assert repr(a.summary()) == repr(b.summary())

    @pytest.mark.parametrize("discipline", ["fair", "priority"])
    def test_scheduled_disks_conserve_queries(self, discipline):
        metrics = self.run_io_mix(discipline, queries=8)
        assert metrics.completed == 8
        assert metrics.shed_count == 0


# ---------------------------------------------------------------------------
# Network-link scheduling through the serving stack
# ---------------------------------------------------------------------------

class TestNetworkLinkServing:
    def test_finite_bandwidth_workload_reports_net_waits(self):
        plan, config = pipeline_chain_scenario(
            nodes=2, processors_per_node=2, base_tuples=1500
        )
        params = scaled_execution_params(seed=5, net_discipline="priority")
        params = dataclasses.replace(
            params,
            network=dataclasses.replace(params.network, bandwidth=5e6),
        )
        spec = WorkloadSpec(
            queries=4, arrival=ArrivalSpec(kind="closed", population=2),
            policy=AdmissionPolicy(max_multiprogramming=2), seed=5,
        )
        metrics = WorkloadDriver(plan, config, spec, params).run().metrics
        assert metrics.completed == 4
        assert metrics.total_net_wait() > 0.0

    def test_substrate_builds_the_configured_disciplines(self):
        params = ExecutionParams(
            disk_discipline="priority", net_discipline="fair",
            network=NetworkParams(bandwidth=1e6),
        )
        coordinator = MultiQueryCoordinator(
            MachineConfig(nodes=2, processors_per_node=2), params=params
        )
        substrate = coordinator.substrate
        assert substrate.disks[0][0].discipline_name == "priority"
        assert substrate.net_link is not None
        assert substrate.net_link.discipline_name == "fair"

    def test_infinite_bandwidth_builds_no_link(self):
        coordinator = MultiQueryCoordinator(
            MachineConfig(nodes=2, processors_per_node=2)
        )
        assert coordinator.substrate.net_link is None

    def test_per_query_io_discipline_overrides_are_rejected(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan, _ = pipeline_chain_scenario(nodes=2, processors_per_node=2,
                                          base_tuples=500)
        coordinator = MultiQueryCoordinator(config)
        for knob in ("disk_discipline", "net_discipline"):
            with pytest.raises(ValueError):
                coordinator.submit(
                    plan, params=ExecutionParams(**{knob: "priority"})
                )


# ---------------------------------------------------------------------------
# Explicit shed completions
# ---------------------------------------------------------------------------

class TestQueryShedCompletion:
    def test_shed_done_event_carries_a_query_shed(self):
        plan, config = pipeline_chain_scenario(
            nodes=2, processors_per_node=2, base_tuples=1500
        )
        impatient = ServiceClass("impatient", queue_timeout=0.02)
        spec = WorkloadSpec(
            queries=8,
            arrival=ArrivalSpec(kind="bursty", rate=400.0, burst_size=8),
            policy=AdmissionPolicy(max_multiprogramming=1),
            classes=((impatient, 1.0),),
            seed=11,
        )
        driver = WorkloadDriver(plan, config, spec)
        coordinator = driver.build_coordinator()
        requests = []
        original = coordinator.submit

        def spy(*args, **kwargs):
            request = original(*args, **kwargs)
            requests.append(request)
            return request

        coordinator.submit = spy
        metrics = coordinator.run()
        assert metrics.shed_count > 0
        assert metrics.completed + metrics.shed_count == 8
        for request in requests:
            assert request.done.triggered
            value = request.done.value
            if request.shed:
                assert isinstance(value, QueryShed)
                assert value.query_id == request.query_id
                assert value.reason == "queue_timeout"
                assert value.service_class == "impatient"
                assert value.record in metrics.shed
            else:
                assert isinstance(value, QueryCompletion)
                assert value.query_id == request.query_id

"""Property tests for the scheduling-discipline invariants.

The three guarantees the machine-scheduler layer rests on:

* **FIFO is the seed**: with the default FIFO discipline, a tagged charge
  stream produces the byte-identical event trace of the untagged one —
  tags are inert, so single-query runs cannot drift from the seed
  behaviour no matter what service classes exist above;
* **fair share never starves**: under an arbitrary saturating charge
  mix, every submitted charge completes, the resource is work-conserving,
  and competing backlogged classes split the slot by their weights;
* **preemption conserves**: however often the priority discipline
  preempts a charge, no charge is lost, every charge's banked service
  sums to its demand, and a higher-priority arrival is served as if the
  lower-priority backlog did not exist.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import (ChargeTag, Environment, Resource,
                            SimulationError, make_discipline)


def run_charges(discipline, charges, capacity=1, trace_tags=False):
    """Run ``charges`` = [(start_delay, duration, key, weight, priority)]
    through one resource; return [(completion_time, index)] in completion
    order plus the resource."""
    env = Environment()
    resource = Resource(env, capacity=capacity, name="r",
                        discipline=make_discipline(discipline))
    done = []

    def proc(index, start, duration, tag):
        if start > 0:
            yield env.timeout(start)
        yield from resource.use(duration, tag)
        done.append((env.now, index))

    for index, (start, duration, key, weight, priority) in enumerate(charges):
        tag = (ChargeTag(key=key, weight=weight, priority=priority)
               if trace_tags else None)
        env.process(proc(index, start, duration, tag))
    env.run()
    return done, resource


charge_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.02),   # start delay
        st.floats(min_value=1e-4, max_value=0.01),  # duration
        st.sampled_from(["a", "b", "c"]),           # class key
        st.floats(min_value=0.25, max_value=8.0),   # weight
        st.integers(min_value=0, max_value=3),      # priority
    ),
    min_size=1, max_size=25,
)


class TestFIFOByteIdentity:
    @given(charges=charge_lists)
    @settings(max_examples=30, deadline=None)
    def test_property_tags_are_inert_under_fifo(self, charges):
        """The FIFO trace with service-class tags is byte-identical to the
        untagged trace: same completion times, same order."""
        tagged, r1 = run_charges("fifo", charges, trace_tags=True)
        untagged, r2 = run_charges("fifo", charges, trace_tags=False)
        assert repr(tagged) == repr(untagged)
        assert (r1.busy_time, r1.wait_time, r1.waits) == \
               (r2.busy_time, r2.wait_time, r2.waits)

    def test_fifo_completion_order_is_arrival_order(self):
        charges = [(0.0, 0.01, "a", 1.0, 0)] * 6
        done, _ = run_charges("fifo", charges)
        assert [index for _t, index in done] == list(range(6))

    def test_fifo_queued_and_preemptions_stats(self):
        charges = [(0.0, 0.01, "a", 1.0, 5), (0.0, 0.01, "b", 9.0, 9)]
        _, resource = run_charges("fifo", charges, trace_tags=True)
        assert resource.preemptions == 0
        assert resource.queued == 0


class TestFairShareProperties:
    @given(charges=charge_lists)
    @settings(max_examples=30, deadline=None)
    def test_property_every_charge_completes_and_conserves(self, charges):
        done, resource = run_charges("fair", charges, trace_tags=True)
        assert len(done) == len(charges)
        total = sum(duration for _s, duration, *_ in charges)
        assert resource.busy_time == pytest.approx(total)

    @given(charges=charge_lists, capacity=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_no_ready_charge_is_starved(self, charges, capacity):
        """Starvation-freedom: the run drains — even a minimum-weight
        charge is eventually granted while heavier classes stay busy."""
        done, _ = run_charges("fair", charges, capacity=capacity,
                              trace_tags=True)
        assert sorted(index for _t, index in done) == list(range(len(charges)))

    def test_light_charge_is_served_long_before_a_heavy_backlog_drains(self):
        # 40 queued heavy-class charges plus one light charge arriving
        # just after the head starts: FIFO would serve it last; fair
        # share serves it after ~one charge of the competing class.
        charges = [(0.0, 0.01, "heavy", 1.0, 0)] * 40
        charges.append((0.001, 0.01, "light", 1.0, 0))
        done, _ = run_charges("fair", charges, trace_tags=True)
        completion = {index: t for t, index in done}
        light = completion[40]
        makespan = max(completion.values())
        assert light < makespan / 4

    def test_saturated_classes_split_by_weight(self):
        env = Environment()
        resource = Resource(env, 1, "cpu", make_discipline("fair"))
        served = {"a": 0.0, "b": 0.0, "c": 0.0}
        weights = {"a": 1.0, "b": 1.0, "c": 4.0}

        def worker(key):
            tag = ChargeTag(key=key, weight=weights[key])
            while env.now < 10.0:
                yield from resource.use(0.01, tag)
                served[key] += 0.01

        for key in served:
            env.process(worker(key))
        env.run(until=10.0)
        total = sum(served.values())
        assert served["c"] / total == pytest.approx(4 / 6, rel=0.05)
        assert served["a"] / total == pytest.approx(1 / 6, rel=0.10)
        # Work conservation: the slot never idled while work existed.
        assert resource.busy_time == pytest.approx(10.0, rel=0.01)


class TestPriorityPreemptiveProperties:
    @given(charges=charge_lists)
    @settings(max_examples=30, deadline=None)
    def test_property_preemption_never_loses_a_charge(self, charges):
        """Conservation: every charge completes exactly once and the
        resource's banked busy time equals the total demand, however many
        preemptions occurred."""
        done, resource = run_charges("priority", charges, trace_tags=True)
        assert sorted(index for _t, index in done) == list(range(len(charges)))
        total = sum(duration for _s, duration, *_ in charges)
        assert resource.busy_time == pytest.approx(total)

    def test_high_priority_arrival_preempts_immediately(self):
        # Low-priority 1.0s charge from t=0; high-priority 0.3s charge at
        # t=0.2 preempts it and completes at 0.5; the victim's remaining
        # 0.8s then finishes at 1.3 — nothing lost, nothing reordered.
        charges = [(0.0, 1.0, "low", 1.0, 0), (0.2, 0.3, "high", 1.0, 5)]
        done, resource = run_charges("priority", charges, trace_tags=True)
        completion = {index: t for t, index in done}
        assert completion[1] == pytest.approx(0.5)
        assert completion[0] == pytest.approx(1.3)
        assert resource.preemptions == 1
        assert resource.busy_time == pytest.approx(1.3)

    def test_preempted_charge_resumes_before_later_equal_priority_work(self):
        # The victim re-queues with its original arrival order: after the
        # preemptor finishes, the victim resumes ahead of an equal-priority
        # charge that arrived after it.
        charges = [
            (0.0, 0.4, "first", 1.0, 0),   # victim
            (0.1, 0.2, "boss", 1.0, 9),    # preemptor
            (0.05, 0.4, "later", 1.0, 0),  # parked behind the victim
        ]
        done, _ = run_charges("priority", charges, trace_tags=True)
        order = [index for _t, index in done]
        assert order == [1, 0, 2]

    def test_equal_priority_does_not_preempt(self):
        charges = [(0.0, 0.5, "a", 1.0, 3), (0.1, 0.1, "b", 1.0, 3)]
        done, resource = run_charges("priority", charges, trace_tags=True)
        assert resource.preemptions == 0
        assert [index for _t, index in done] == [0, 1]


class TestPriorityCallbackEdgePaths:
    """Edge paths of the callback-driven priority rewrite: preemption
    landing exactly at the victim's completion instant (the lazy-cancel +
    wake path) and multi-slot preemption with re-placement."""

    def test_preemption_exactly_at_completion_conserves(self):
        # The preemptor's arrival event is scheduled before the victim's
        # segment timeout at the same instant, so the victim is preempted
        # with zero remaining service: it must complete (not requeue),
        # the slot must transfer, and nothing may be double-released.
        env = Environment()
        resource = Resource(env, 1, "r", make_discipline("priority"))
        done = []

        def boss():
            yield env.timeout(0.2)
            yield from resource.use(0.1, ChargeTag(key="b", priority=9))
            done.append(("b", env.now))

        def victim():
            yield from resource.use(0.2, ChargeTag(key="v", priority=0))
            done.append(("v", env.now))

        env.process(boss())
        env.process(victim())
        env.run()
        completion = dict(done)
        assert completion["v"] == pytest.approx(0.2)
        assert completion["b"] == pytest.approx(0.3)
        assert resource.preemptions == 1
        assert resource.busy_time == pytest.approx(0.3)
        assert resource.users == 0 and resource.queued == 0

    def test_multi_slot_preemption_re_places_the_victim(self):
        # Capacity 2: the preemptor displaces the weakest running charge,
        # which re-places itself (parks, since the other runner outranks
        # it) and still completes with its full remaining service.
        env = Environment()
        resource = Resource(env, 2, "r", make_discipline("priority"))
        done = []

        def worker(key, start, duration, priority):
            if start:
                yield env.timeout(start)
            yield from resource.use(duration,
                                    ChargeTag(key=key, priority=priority))
            done.append((key, env.now))

        env.process(worker("low", 0.0, 1.0, 0))
        env.process(worker("mid", 0.0, 1.0, 1))
        env.process(worker("boss", 0.1, 0.2, 9))
        env.run()
        completion = dict(done)
        assert completion["boss"] == pytest.approx(0.3)
        assert completion["mid"] == pytest.approx(1.0)
        # low: 0.1 served, preempted for 0.2, resumes at 0.3 on the slot
        # boss freed, finishes its remaining 0.9 at 1.2.
        assert completion["low"] == pytest.approx(1.2)
        assert resource.preemptions == 1
        assert resource.busy_time == pytest.approx(2.2)


class TestDisciplineRegistry:
    def test_known_names(self):
        from repro.sim.core import discipline_names
        assert discipline_names() == ["fair", "fifo", "priority"]

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError):
            make_discipline("shortest-job-first")

    def test_invalid_tag_rejected(self):
        with pytest.raises(SimulationError):
            ChargeTag(weight=0.0)

    def test_params_validate_discipline(self):
        from repro.engine import ExecutionParams
        with pytest.raises(ValueError):
            ExecutionParams(cpu_discipline="lifo")

"""Stress tier: many concurrent queries on the hierarchical 4x8 machine.

The heavy runs are marked ``slow`` and excluded from tier-1 (see
``pytest.ini``); run them with ``pytest -m slow`` or ``make check-full``.
A small smoke variant stays in tier-1 so the multi-query path is always
exercised.
"""

import dataclasses

import pytest

from repro.catalog import SkewSpec
from repro.engine import ExecutionParams
from repro.serving import (AdmissionPolicy, ArrivalSpec, BATCH, INTERACTIVE,
                           WorkloadDriver, WorkloadSpec)
from repro.workloads import pipeline_chain_scenario


def stress_spec(queries, arrival, mpl, seed=1):
    return WorkloadSpec(
        queries=queries,
        arrival=arrival,
        strategy="DP",
        policy=AdmissionPolicy(max_multiprogramming=mpl),
        seed=seed,
    )


def assert_workload_sane(plan, metrics, queries):
    assert metrics.completed == queries
    assert metrics.unfinished == 0
    expected_scan = sum(r.cardinality for r in plan.graph.relations.values())
    for completion in metrics.completions:
        m = completion.result.metrics
        assert m.tuples_scanned == expected_scan
        assert m.activations_processed == (
            m.trigger_activations + m.data_activations
        )


@pytest.mark.slow
class TestServingStress4x8:
    """50+ concurrent queries on the paper's 4x8 hierarchical machine."""

    def test_closed_loop_50_queries_complete(self):
        plan, config = pipeline_chain_scenario(
            nodes=4, processors_per_node=8, base_tuples=4000,
        )
        params = ExecutionParams(
            skew=SkewSpec.uniform_redistribution(0.8), seed=1
        )
        spec = stress_spec(
            50, ArrivalSpec(kind="closed", population=12), mpl=12
        )
        driver = WorkloadDriver(plan, config, spec, params)
        coordinator = driver.build_coordinator()
        metrics = coordinator.run()
        assert_workload_sane(plan, metrics, 50)
        assert coordinator.peak_running <= 12
        # Concurrency was real: queries overlapped on the machine.
        assert coordinator.peak_running >= 8
        assert metrics.total_cpu_contention() > 0.0

    def test_open_loop_underload_keeps_queueing_bounded(self):
        # Offered load ~60% of the measured closed-loop capacity
        # (~8 q/s at MPL 12): admission queues must stay shallow, so
        # queueing delay is bounded by the execution time scale instead
        # of growing with the run length.
        plan, config = pipeline_chain_scenario(
            nodes=4, processors_per_node=8, base_tuples=4000,
        )
        params = ExecutionParams(
            skew=SkewSpec.uniform_redistribution(0.8), seed=2
        )
        spec = stress_spec(
            50, ArrivalSpec(kind="poisson", rate=5.0), mpl=12, seed=2
        )
        metrics = WorkloadDriver(plan, config, spec, params).run().metrics
        assert_workload_sane(plan, metrics, 50)
        mean_exec = metrics.mean_execution_time()
        assert metrics.mean_queueing_delay() <= 2.0 * mean_exec
        assert metrics.max_queueing_delay() <= metrics.makespan / 2.0
        assert metrics.p99_latency <= 10.0 * mean_exec

    def test_bursty_arrivals_drain(self):
        plan, config = pipeline_chain_scenario(
            nodes=4, processors_per_node=8, base_tuples=4000,
        )
        spec = stress_spec(
            50, ArrivalSpec(kind="bursty", rate=6.0, burst_size=8,
                            burst_speedup=20.0),
            mpl=12, seed=3,
        )
        metrics = WorkloadDriver(plan, config, spec).run().metrics
        assert_workload_sane(plan, metrics, 50)
        # Bursts must actually produce admission queueing...
        assert metrics.max_queueing_delay() > 0.0
        # ...which the lulls drain: delays stay bounded by the makespan.
        assert metrics.max_queueing_delay() <= metrics.makespan / 2.0

    def test_cross_query_stealing_at_50_query_scale(self):
        # The skewed stress scenario at scale: 50 queries of mixed sizes
        # (a large skewed chain and a small one) on the paper's 4x8
        # machine with the cross-query broker on vs off.  The broker must
        # participate (rounds fire, activations move through the
        # five-condition protocol), keep every conservation invariant,
        # and not hurt the makespan.  Scaled parameters, so CPU — the
        # resource the broker rebalances — actually matters.
        from repro.experiments.config import scaled_execution_params

        big, config = pipeline_chain_scenario(
            nodes=4, processors_per_node=8, base_tuples=6000,
        )
        small, _ = pipeline_chain_scenario(
            nodes=4, processors_per_node=8, base_tuples=800,
        )
        results = {}
        for steal in (True, False):
            params = scaled_execution_params(
                skew=SkewSpec.uniform_redistribution(1.0), seed=6,
                cross_query_steal=steal,
            )
            spec = stress_spec(
                50, ArrivalSpec(kind="poisson", rate=60.0), mpl=12, seed=6,
            )
            metrics = WorkloadDriver(
                [big, small], config, spec, params
            ).run().metrics
            assert metrics.completed == 50
            for completion in metrics.completions:
                m = completion.result.metrics
                assert m.activations_processed == (
                    m.trigger_activations + m.data_activations
                )
            results[steal] = metrics
        assert results[True].total_cross_steal_rounds() > 0
        assert results[False].total_cross_steal_rounds() == 0
        assert results[True].broker_notifications > 0
        assert results[True].makespan <= results[False].makespan * 1.02

    def test_service_classes_under_stress(self):
        # 50 mixed interactive/batch queries under priority preemption:
        # every class gate holds, the run is conservative, and the
        # interactive class's p95 stays clearly below batch's.
        from repro.experiments.config import scaled_execution_params

        plan, config = pipeline_chain_scenario(
            nodes=4, processors_per_node=8, base_tuples=6000,
        )
        params = scaled_execution_params(
            skew=SkewSpec.uniform_redistribution(0.8), seed=7,
            cpu_discipline="priority",
        )
        interactive = dataclasses.replace(INTERACTIVE, latency_slo=60.0)
        spec = WorkloadSpec(
            queries=50,
            arrival=ArrivalSpec(kind="closed", population=12),
            policy=AdmissionPolicy(max_multiprogramming=12),
            classes=((interactive, 1.0), (BATCH, 2.0)),
            seed=7,
        )
        metrics = WorkloadDriver(plan, config, spec, params).run().metrics
        assert_workload_sane(plan, metrics, 50)
        assert set(metrics.class_names()) == {"interactive", "batch"}
        assert (metrics.class_latency_percentile("interactive", 95.0)
                < metrics.class_latency_percentile("batch", 95.0))


class TestServingStress50Tier1:
    """The 50-query closed-loop stress shape, promoted into tier-1.

    Runs under the hybrid kernel (``ExecutionParams.kernel="hybrid"``),
    so every push exercises analytic fast-forward at real
    multiprogramming scale — 50 queries on the paper's 4x8 machine —
    and the run stays well inside the tier-1 time budget (<10s).  The
    discrete-kernel original remains in the slow tier above.
    """

    def test_closed_loop_50_queries_hybrid_kernel(self):
        plan, config = pipeline_chain_scenario(
            nodes=4, processors_per_node=8, base_tuples=4000,
        )
        params = ExecutionParams(
            skew=SkewSpec.uniform_redistribution(0.8), seed=1,
            kernel="hybrid",
        )
        spec = stress_spec(
            50, ArrivalSpec(kind="closed", population=12), mpl=12
        )
        driver = WorkloadDriver(plan, config, spec, params)
        coordinator = driver.build_coordinator()
        metrics = coordinator.run()
        assert_workload_sane(plan, metrics, 50)
        assert coordinator.peak_running <= 12
        assert coordinator.peak_running >= 8
        assert metrics.total_cpu_contention() > 0.0


class TestServingStressSmoke:
    """Tier-1-sized version of the stress shape (always runs)."""

    def test_smoke_12_queries_2x2(self):
        plan, config = pipeline_chain_scenario(
            nodes=2, processors_per_node=2, base_tuples=800,
        )
        params = ExecutionParams(
            skew=SkewSpec.uniform_redistribution(0.8), seed=4
        )
        spec = stress_spec(
            12, ArrivalSpec(kind="bursty", rate=60.0, burst_size=6), mpl=4,
            seed=4,
        )
        driver = WorkloadDriver(plan, config, spec, params)
        coordinator = driver.build_coordinator()
        metrics = coordinator.run()
        assert_workload_sane(plan, metrics, 12)
        assert coordinator.peak_running <= 4

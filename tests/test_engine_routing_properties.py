"""Property tests for routing conservation and flow control.

The output channel is the engine's most delicate component: it converts
tuple counts into batched activations across Zipf-weighted cells with
exact integer conservation, under queue bounds and credit windows.  These
tests drive it directly (single-node contexts so deliveries are local) and
assert the invariants the integration suite relies on.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Relation
from repro.engine import ExecutionParams
from repro.engine.context import ExecutionContext
from repro.optimizer import BaseNode, JoinNode, compile_plan
from repro.query import JoinEdge, QueryGraph
from repro.sim import MachineConfig


def make_context(nodes=1, procs=4, params=None):
    """A context for a trivial join plan (R join S)."""
    sel = 1.0 / 100
    graph = QueryGraph(
        [Relation("R", 100), Relation("S", 100)], [JoinEdge("R", "S", sel)]
    )
    tree = JoinNode(BaseNode(graph.relation("R")), BaseNode(graph.relation("S")), sel)
    config = MachineConfig(nodes=nodes, processors_per_node=procs)
    plan = compile_plan(graph, tree, config)
    return ExecutionContext(plan, config, params or ExecutionParams())


def build_channel(context):
    """The scan -> build channel on node 0."""
    scan = context.plan.operators.scans()[0]
    return context.channels[(0, scan.op_id)]


class TestChannelConservation:
    @given(pushes=st.lists(st.integers(min_value=0, max_value=500),
                           min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_flush_conserves_tuples_exactly(self, pushes):
        context = make_context()
        channel = build_channel(context)
        for n in pushes:
            channel.push_tuples(n)
        channel.flush()
        assert channel.tuples_out == channel.tuples_in == sum(pushes)

    @given(theta=st.floats(min_value=0.0, max_value=1.0),
           total=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=50, deadline=None)
    def test_property_conservation_under_skew(self, theta, total):
        from repro.catalog import SkewSpec
        context = make_context(
            params=ExecutionParams(skew=SkewSpec.uniform_redistribution(theta))
        )
        channel = build_channel(context)
        channel.push_tuples(total)
        channel.flush()
        assert channel.tuples_out == total

    def test_batches_respect_batch_size(self):
        context = make_context(params=ExecutionParams(batch_size=32))
        channel = build_channel(context)
        channel.push_tuples(10_000)
        consumer = context.plan.operators.builds()[0].op_id
        queue_set = context.nodes[0].queue_sets[consumer]
        sizes = [a.tuples for q in queue_set.queues for a in q]
        assert sizes
        assert all(s <= 32 for s in sizes)

    def test_outstanding_counter_tracks_emissions(self):
        context = make_context()
        channel = build_channel(context)
        consumer = context.plan.operators.builds()[0].op_id
        runtime = context.ops[consumer]
        before = runtime.outstanding
        channel.push_tuples(1000)
        channel.flush()
        assert runtime.outstanding == before + channel.activations_emitted

    def test_flush_idempotent(self):
        context = make_context()
        channel = build_channel(context)
        channel.push_tuples(77)
        channel.flush()
        out = channel.tuples_out
        channel.flush()
        assert channel.tuples_out == out

    def test_terminal_channel_counts_results(self):
        context = make_context()
        root = context.plan.operators.root_id
        channel = context.channels[(0, root)]
        assert channel.router is None
        assert channel.push_tuples(42) == 0
        assert context.result_sink.tuples == 42


class TestFlowControl:
    def test_stall_on_full_queues(self):
        context = make_context(
            params=ExecutionParams(queue_capacity=2, pending_stall_limit=2,
                                   batch_size=8)
        )
        channel = build_channel(context)
        assert not channel.stalled
        # 4 threads x capacity 2 x batch 8 = 64 tuples fit; push far more.
        channel.push_tuples(5000)
        assert channel.stalled
        assert channel.parked_activations() > 0

    def test_unstall_after_draining(self):
        context = make_context(
            params=ExecutionParams(queue_capacity=2, pending_stall_limit=2,
                                   batch_size=8)
        )
        channel = build_channel(context)
        channel.push_tuples(5000)
        consumer = context.plan.operators.builds()[0].op_id
        queue_set = context.nodes[0].queue_sets[consumer]
        node = context.nodes[0]
        # Consume everything; every pop triggers the drain hook.
        drained = 0
        while queue_set.has_work:
            for index, queue in enumerate(queue_set.queues):
                while not queue.is_empty:
                    activation = queue_set.pop(index)
                    node.on_queue_pop(queue, activation)
                    drained += activation.tuples
        assert not channel.stalled
        assert channel.parked_activations() == 0
        assert drained == channel.tuples_out

    def test_stalled_op_not_selectable(self):
        context = make_context(
            params=ExecutionParams(queue_capacity=2, pending_stall_limit=2,
                                   batch_size=8)
        )
        channel = build_channel(context)
        scan_id = context.plan.operators.scans()[0].op_id
        runtime = context.ops[scan_id]
        context.seed_triggers()
        assert context.is_op_selectable(context.nodes[0], runtime)
        channel.push_tuples(5000)
        assert not context.is_op_selectable(context.nodes[0], runtime)


class TestRemoteCredits:
    def test_remote_cells_start_with_credit_window(self):
        context = make_context(nodes=2, procs=2,
                               params=ExecutionParams(credit_window=3))
        channel = build_channel(context)
        remote_cells = [
            i for i, cell in enumerate(channel.router.cells) if cell[0] != 0
        ]
        assert remote_cells
        assert all(channel._remote_credits[i] == 3 for i in remote_cells)

    def test_remote_sends_consume_credits_and_park_beyond(self):
        from repro.engine.scheduler import NodeScheduler
        context = make_context(nodes=2, procs=2,
                               params=ExecutionParams(credit_window=1,
                                                      batch_size=4,
                                                      pending_stall_limit=100))
        for node in context.nodes:
            NodeScheduler(context, node)
        channel = build_channel(context)
        channel.push_tuples(1000)
        remote_cells = [
            i for i, cell in enumerate(channel.router.cells) if cell[0] != 0
        ]
        assert all(channel._remote_credits[i] == 0 for i in remote_cells)
        assert channel.parked_activations() > 0
        # Returning credits drains parked batches.
        before = channel.parked_activations()
        cell = channel.router.cells[remote_cells[0]]
        channel.on_credit(cell, 5)
        assert channel.parked_activations() < before

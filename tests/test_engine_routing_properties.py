"""Property tests for routing conservation and flow control.

The output channel is the engine's most delicate component: it converts
tuple counts into batched activations across Zipf-weighted cells with
exact integer conservation, under queue bounds and credit windows.  These
tests drive it directly (single-node contexts so deliveries are local) and
assert the invariants the integration suite relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Relation
from repro.engine import ExecutionParams
from repro.engine.context import ExecutionContext
from repro.optimizer import BaseNode, JoinNode, compile_plan
from repro.query import JoinEdge, QueryGraph
from repro.sim import MachineConfig


def make_context(nodes=1, procs=4, params=None):
    """A context for a trivial join plan (R join S)."""
    sel = 1.0 / 100
    graph = QueryGraph(
        [Relation("R", 100), Relation("S", 100)], [JoinEdge("R", "S", sel)]
    )
    tree = JoinNode(BaseNode(graph.relation("R")), BaseNode(graph.relation("S")), sel)
    config = MachineConfig(nodes=nodes, processors_per_node=procs)
    plan = compile_plan(graph, tree, config)
    return ExecutionContext(plan, config, params or ExecutionParams())


def build_channel(context):
    """The scan -> build channel on node 0."""
    scan = context.plan.operators.scans()[0]
    return context.channels[(0, scan.op_id)]


class TestChannelConservation:
    @given(pushes=st.lists(st.integers(min_value=0, max_value=500),
                           min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_flush_conserves_tuples_exactly(self, pushes):
        context = make_context()
        channel = build_channel(context)
        for n in pushes:
            channel.push_tuples(n)
        channel.flush()
        assert channel.tuples_out == channel.tuples_in == sum(pushes)

    @given(theta=st.floats(min_value=0.0, max_value=1.0),
           total=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=50, deadline=None)
    def test_property_conservation_under_skew(self, theta, total):
        from repro.catalog import SkewSpec
        context = make_context(
            params=ExecutionParams(skew=SkewSpec.uniform_redistribution(theta))
        )
        channel = build_channel(context)
        channel.push_tuples(total)
        channel.flush()
        assert channel.tuples_out == total

    def test_batches_respect_batch_size(self):
        context = make_context(params=ExecutionParams(batch_size=32))
        channel = build_channel(context)
        channel.push_tuples(10_000)
        consumer = context.plan.operators.builds()[0].op_id
        queue_set = context.nodes[0].queue_sets[consumer]
        sizes = [a.tuples for q in queue_set.queues for a in q]
        assert sizes
        assert all(s <= 32 for s in sizes)

    def test_outstanding_counter_tracks_emissions(self):
        context = make_context()
        channel = build_channel(context)
        consumer = context.plan.operators.builds()[0].op_id
        runtime = context.ops[consumer]
        before = runtime.outstanding
        channel.push_tuples(1000)
        channel.flush()
        assert runtime.outstanding == before + channel.activations_emitted

    def test_flush_idempotent(self):
        context = make_context()
        channel = build_channel(context)
        channel.push_tuples(77)
        channel.flush()
        out = channel.tuples_out
        channel.flush()
        assert channel.tuples_out == out

    def test_terminal_channel_counts_results(self):
        context = make_context()
        root = context.plan.operators.root_id
        channel = context.channels[(0, root)]
        assert channel.router is None
        assert channel.push_tuples(42) == 0
        assert context.result_sink.tuples == 42


class TestFlowControl:
    def test_stall_on_full_queues(self):
        context = make_context(
            params=ExecutionParams(queue_capacity=2, pending_stall_limit=2,
                                   batch_size=8)
        )
        channel = build_channel(context)
        assert not channel.stalled
        # 4 threads x capacity 2 x batch 8 = 64 tuples fit; push far more.
        channel.push_tuples(5000)
        assert channel.stalled
        assert channel.parked_activations() > 0

    def test_unstall_after_draining(self):
        context = make_context(
            params=ExecutionParams(queue_capacity=2, pending_stall_limit=2,
                                   batch_size=8)
        )
        channel = build_channel(context)
        channel.push_tuples(5000)
        consumer = context.plan.operators.builds()[0].op_id
        queue_set = context.nodes[0].queue_sets[consumer]
        node = context.nodes[0]
        # Consume everything; every pop triggers the drain hook.
        drained = 0
        while queue_set.has_work:
            for index, queue in enumerate(queue_set.queues):
                while not queue.is_empty:
                    activation = queue_set.pop(index)
                    node.on_queue_pop(queue, activation)
                    drained += activation.tuples
        assert not channel.stalled
        assert channel.parked_activations() == 0
        assert drained == channel.tuples_out

    def test_stalled_op_not_selectable(self):
        context = make_context(
            params=ExecutionParams(queue_capacity=2, pending_stall_limit=2,
                                   batch_size=8)
        )
        channel = build_channel(context)
        scan_id = context.plan.operators.scans()[0].op_id
        runtime = context.ops[scan_id]
        context.seed_triggers()
        assert context.is_op_selectable(context.nodes[0], runtime)
        channel.push_tuples(5000)
        assert not context.is_op_selectable(context.nodes[0], runtime)


class TestRemoteCredits:
    def test_remote_cells_start_with_credit_window(self):
        context = make_context(nodes=2, procs=2,
                               params=ExecutionParams(credit_window=3))
        channel = build_channel(context)
        remote_cells = [
            i for i, cell in enumerate(channel.router.cells) if cell[0] != 0
        ]
        assert remote_cells
        assert all(channel._remote_credits[i] == 3 for i in remote_cells)

    def test_remote_sends_consume_credits_and_park_beyond(self):
        from repro.engine.scheduler import NodeScheduler
        context = make_context(nodes=2, procs=2,
                               params=ExecutionParams(credit_window=1,
                                                      batch_size=4,
                                                      pending_stall_limit=100))
        for node in context.nodes:
            NodeScheduler(context, node)
        channel = build_channel(context)
        channel.push_tuples(1000)
        remote_cells = [
            i for i, cell in enumerate(channel.router.cells) if cell[0] != 0
        ]
        assert all(channel._remote_credits[i] == 0 for i in remote_cells)
        assert channel.parked_activations() > 0
        # Returning credits drains parked batches.
        before = channel.parked_activations()
        cell = channel.router.cells[remote_cells[0]]
        channel.on_credit(cell, 5)
        assert channel.parked_activations() < before


# ---------------------------------------------------------------------------
# Steal protocol: the paper's five conditions (Sections 3.2 and 4)
# ---------------------------------------------------------------------------

def make_steal_context(params=None):
    """A two-node context with schedulers, probe unblocked on both nodes."""
    from repro.engine.scheduler import NodeScheduler

    context = make_context(nodes=2, procs=2, params=params)
    for node in context.nodes:
        NodeScheduler(context, node)
    probe = context.plan.operators.probes()[0]
    runtime = context.ops[probe.op_id]
    runtime.blocked = False
    for node_id in runtime.home:
        context.nodes[node_id].queue_sets[probe.op_id].set_blocked(False)
    return context, runtime


def fill_probe_queues(context, runtime, node_id, fills, tuples=8,
                      tuple_size=100):
    """Push ``fills[i]`` data activations into node's i-th probe queue."""
    from repro.engine.activation import DataActivation

    queue_set = context.nodes[node_id].queue_sets[runtime.op_id]
    for queue_index, count in enumerate(fills[:len(queue_set.queues)]):
        for _ in range(count):
            queue_set.push(
                queue_index,
                DataActivation(op_id=runtime.op_id,
                               group=(node_id, queue_index),
                               tuples=tuples, tuple_size=tuple_size),
                force=True,
            )
    return queue_set


class TestStealProtocolConditions:
    """The provider's best-candidate selection honours all five conditions.

    (i) the requester can store the shipment, (ii) enough work to
    amortize, (iii) at most the steal fraction, (iv) probe activations
    only, (v) unblocked operators only — plus home membership.
    """

    @given(
        fills=st.lists(st.integers(min_value=0, max_value=40),
                       min_size=2, max_size=2),
        free_memory=st.sampled_from([0, 100, 1_000, 100_000, 10_000_000]),
        min_steal=st.integers(min_value=1, max_value=8),
        fraction=st.sampled_from([0.25, 0.5, 1.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_candidate_satisfies_all_conditions(
            self, fills, free_memory, min_steal, fraction):
        context, runtime = make_steal_context(
            params=ExecutionParams(min_steal_activations=min_steal,
                                   steal_fraction=fraction)
        )
        queue_set = fill_probe_queues(context, runtime, 1, fills)
        provider = context.nodes[1].scheduler
        candidate = provider._best_candidate(
            requester=0, scope=None, free_memory=free_memory,
            cached=frozenset(),
        )
        eligible = {}
        for index, queue in enumerate(queue_set.queues):
            if len(queue) < min_steal:
                continue  # condition (ii) must exclude it
            steal_count = max(1, int(len(queue) * fraction))
            activation_bytes = int(
                queue.bytes_queued / max(1, len(queue)) * steal_count
            )
            if activation_bytes > free_memory:
                continue  # condition (i) must exclude it
            eligible[index] = steal_count
        if candidate is None:
            assert not eligible
            return
        # Condition (iv): probes only; (v): unblocked; home membership.
        offered = context.ops[candidate.op_id]
        assert offered.kind.name == "PROBE"
        assert not offered.blocked and not offered.terminated
        assert 0 in offered.home
        # Condition (ii) + (iii): count within [min, fraction * queue].
        queue = queue_set.queues[candidate.queue_index]
        assert len(queue) >= min_steal
        assert candidate.steal_count == eligible[candidate.queue_index]
        assert candidate.steal_count <= max(1, int(len(queue) * fraction))
        # Condition (i): the shipment fits the requester's free memory.
        assert candidate.overhead <= free_memory

    def test_blocked_probe_is_never_offered(self):
        context, runtime = make_steal_context()
        fill_probe_queues(context, runtime, 1, [10, 10])
        runtime.blocked = True
        candidate = context.nodes[1].scheduler._best_candidate(
            requester=0, scope=None, free_memory=10_000_000,
            cached=frozenset(),
        )
        assert candidate is None

    def test_trigger_activations_are_never_offered(self):
        # Scans hold only trigger activations; condition (iv) excludes
        # them (triggers need local disks).
        context, _ = make_steal_context()
        context.seed_triggers()
        scan_ids = {op.op_id for op in context.plan.operators.scans()}
        for node in context.nodes:
            candidate = node.scheduler._best_candidate(
                requester=1 - node.node_id, scope=None,
                free_memory=10_000_000, cached=frozenset(),
            )
            assert candidate is None or candidate.op_id not in scan_ids

    def test_scope_restricts_the_offer(self):
        context, runtime = make_steal_context()
        fill_probe_queues(context, runtime, 1, [10, 10])
        provider = context.nodes[1].scheduler
        other_scope = runtime.op_id + 999
        assert provider._best_candidate(
            requester=0, scope=other_scope, free_memory=10_000_000,
            cached=frozenset(),
        ) is None
        scoped = provider._best_candidate(
            requester=0, scope=runtime.op_id, free_memory=10_000_000,
            cached=frozenset(),
        )
        assert scoped is not None and scoped.op_id == runtime.op_id

    def test_non_home_requester_gets_no_offer(self):
        context, runtime = make_steal_context()
        fill_probe_queues(context, runtime, 1, [10, 10])
        # Shrink the probe's home to the provider only.
        runtime.home = (1,)
        candidate = context.nodes[1].scheduler._best_candidate(
            requester=0, scope=None, free_memory=10_000_000,
            cached=frozenset(),
        )
        assert candidate is None


class TestStealConservation:
    @given(
        count=st.integers(min_value=0, max_value=50),
        steal=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_steal_moves_without_duplication(self, count, steal):
        context, runtime = make_steal_context()
        queue_set = fill_probe_queues(context, runtime, 1, [count, 0])
        queue = queue_set.queues[0]
        before = list(queue)
        stolen = queue_set.steal_from(0, steal)
        remaining = list(queue)
        # Conservation: stolen + remaining is exactly the original set,
        # in order, with no activation duplicated or lost.
        assert len(stolen) == min(steal, count)
        assert remaining + stolen == before
        assert queue.total_popped == len(stolen)

"""Tests for join trees, the cost model, and the bushy search."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Relation
from repro.optimizer import (
    BaseNode,
    BushySearch,
    CardinalityEstimator,
    CostModel,
    CostParams,
    JoinNode,
    best_bushy_trees,
    distort_cardinalities,
    is_left_deep,
    is_right_deep,
    is_zigzag,
    joins,
    leaves,
    tree_signature,
    validate_tree,
)
from repro.query import JoinEdge, QueryGenerator, QueryGraph
from repro.sim import RandomStreams


def chain_graph(cards=(100, 200, 300, 400)):
    """R0 - R1 - R2 - R3 chain with unit-result selectivities."""
    relations = [Relation(f"R{i}", c) for i, c in enumerate(cards)]
    edges = []
    for i in range(len(cards) - 1):
        a, b = relations[i], relations[i + 1]
        sel = max(a.cardinality, b.cardinality) / (a.cardinality * b.cardinality)
        edges.append(JoinEdge(a.name, b.name, sel))
    return QueryGraph(relations, edges)


def leaf(graph, name):
    return BaseNode(graph.relation(name))


# ---------------------------------------------------------------------------
# Join tree structure
# ---------------------------------------------------------------------------

class TestJoinTree:
    def test_leaves_and_joins_traversal(self):
        graph = chain_graph()
        tree = JoinNode(
            JoinNode(leaf(graph, "R0"), leaf(graph, "R1"),
                     graph.edge_between("R0", "R1").selectivity),
            JoinNode(leaf(graph, "R2"), leaf(graph, "R3"),
                     graph.edge_between("R2", "R3").selectivity),
            graph.edge_between("R1", "R2").selectivity,
        )
        assert [leaf_node.relation.name
                for leaf_node in leaves(tree)] == ["R0", "R1", "R2", "R3"]
        assert len(list(joins(tree))) == 3
        assert tree.relations == frozenset(["R0", "R1", "R2", "R3"])

    def test_overlapping_children_rejected(self):
        graph = chain_graph()
        with pytest.raises(ValueError):
            JoinNode(leaf(graph, "R0"), leaf(graph, "R0"), 0.1)

    def test_shape_predicates(self):
        graph = chain_graph()
        sel01 = graph.edge_between("R0", "R1").selectivity
        sel12 = graph.edge_between("R1", "R2").selectivity
        sel23 = graph.edge_between("R2", "R3").selectivity
        # Left-deep: probe is always a base relation.
        left_deep = JoinNode(
            JoinNode(JoinNode(leaf(graph, "R0"), leaf(graph, "R1"), sel01),
                     leaf(graph, "R2"), sel12),
            leaf(graph, "R3"), sel23,
        )
        assert is_left_deep(left_deep)
        assert is_zigzag(left_deep)
        assert not is_right_deep(left_deep)
        # Right-deep: build is always a base relation.
        right_deep = JoinNode(
            leaf(graph, "R0"),
            JoinNode(leaf(graph, "R1"),
                     JoinNode(leaf(graph, "R2"), leaf(graph, "R3"), sel23),
                     sel12),
            sel01,
        )
        assert is_right_deep(right_deep)
        assert not is_left_deep(right_deep)
        # Balanced bushy: neither.
        bushy = JoinNode(
            JoinNode(leaf(graph, "R0"), leaf(graph, "R1"), sel01),
            JoinNode(leaf(graph, "R2"), leaf(graph, "R3"), sel23),
            sel12,
        )
        assert not is_left_deep(bushy)
        assert not is_right_deep(bushy)
        assert not is_zigzag(bushy)

    def test_validate_tree_accepts_valid(self):
        graph = chain_graph()
        tree = JoinNode(
            JoinNode(leaf(graph, "R0"), leaf(graph, "R1"),
                     graph.edge_between("R0", "R1").selectivity),
            JoinNode(leaf(graph, "R2"), leaf(graph, "R3"),
                     graph.edge_between("R2", "R3").selectivity),
            graph.edge_between("R1", "R2").selectivity,
        )
        validate_tree(tree, graph)  # should not raise

    def test_validate_tree_rejects_cross_product(self):
        graph = chain_graph()
        # R0 joined with R2 crosses no predicate edge.
        bad = JoinNode(leaf(graph, "R0"), leaf(graph, "R2"), 0.001)
        from repro.query import GraphError
        with pytest.raises(GraphError):
            validate_tree(
                JoinNode(bad,
                         JoinNode(leaf(graph, "R1"), leaf(graph, "R3"), 0.001),
                         0.001),
                graph,
            )

    def test_validate_tree_rejects_missing_relation(self):
        graph = chain_graph()
        partial = JoinNode(leaf(graph, "R0"), leaf(graph, "R1"),
                           graph.edge_between("R0", "R1").selectivity)
        from repro.query import GraphError
        with pytest.raises(GraphError):
            validate_tree(partial, graph)

    def test_tree_signature_distinguishes_orientation(self):
        graph = chain_graph()
        sel = graph.edge_between("R0", "R1").selectivity
        a = JoinNode(leaf(graph, "R0"), leaf(graph, "R1"), sel)
        b = JoinNode(leaf(graph, "R1"), leaf(graph, "R0"), sel)
        assert tree_signature(a) != tree_signature(b)


# ---------------------------------------------------------------------------
# Cardinality estimation and distortion
# ---------------------------------------------------------------------------

class TestEstimation:
    def test_base_cardinality(self):
        graph = chain_graph()
        estimator = CardinalityEstimator(graph)
        assert estimator.cardinality(leaf(graph, "R2")) == 300

    def test_join_cardinality(self):
        graph = chain_graph()
        estimator = CardinalityEstimator(graph)
        sel = graph.edge_between("R0", "R1").selectivity
        tree = JoinNode(leaf(graph, "R0"), leaf(graph, "R1"), sel)
        assert estimator.cardinality(tree) == pytest.approx(100 * 200 * sel)

    def test_distortion_within_bounds(self):
        graph = chain_graph()
        rng = random.Random(0)
        for rate in (0.05, 0.1, 0.2, 0.3):
            distorted = distort_cardinalities(graph, rate, rng)
            for name, relation in graph.relations.items():
                low = relation.cardinality * (1 - rate)
                high = relation.cardinality * (1 + rate)
                assert low - 1e-9 <= distorted[name] <= high + 1e-9

    def test_distortion_zero_is_exact(self):
        graph = chain_graph()
        distorted = distort_cardinalities(graph, 0.0, random.Random(0))
        for name, relation in graph.relations.items():
            assert distorted[name] == relation.cardinality

    def test_distortion_rate_out_of_range(self):
        with pytest.raises(ValueError):
            distort_cardinalities(chain_graph(), 1.5, random.Random(0))

    def test_estimator_with_overrides(self):
        graph = chain_graph()
        estimator = CardinalityEstimator(graph, {"R0": 1000.0, "R1": 200.0,
                                                 "R2": 300.0, "R3": 400.0})
        assert estimator.cardinality(leaf(graph, "R0")) == 1000.0


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

class TestCostModel:
    def test_operator_costs_are_linear(self):
        model = CostModel()
        assert model.scan_instructions(1000) == 1000 * 300
        assert model.build_instructions(1000) == 1000 * 200
        assert model.probe_instructions(1000, 500) == 1000 * 100 + 500 * 100

    def test_tree_cost_positive_and_monotone_in_size(self):
        small = chain_graph((100, 100, 100, 100))
        large = chain_graph((10_000, 10_000, 10_000, 10_000))
        model = CostModel()

        def any_tree(graph):
            sel01 = graph.edge_between("R0", "R1").selectivity
            sel12 = graph.edge_between("R1", "R2").selectivity
            sel23 = graph.edge_between("R2", "R3").selectivity
            return JoinNode(
                JoinNode(leaf(graph, "R0"), leaf(graph, "R1"), sel01),
                JoinNode(leaf(graph, "R2"), leaf(graph, "R3"), sel23),
                sel12,
            )

        cost_small = model.join_tree_cost(any_tree(small), graph=small)
        cost_large = model.join_tree_cost(any_tree(large), graph=large)
        assert 0 < cost_small < cost_large

    def test_instructions_time(self):
        params = CostParams(mips=40e6)
        assert params.instructions_time(40e6) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Bushy search
# ---------------------------------------------------------------------------

class TestBushySearch:
    def test_returns_k_valid_trees(self):
        graph = chain_graph()
        trees = best_bushy_trees(graph, k=2)
        assert len(trees) == 2
        for tree in trees:
            validate_tree(tree, graph)

    def test_top1_is_cheapest(self):
        graph = chain_graph()
        search = BushySearch(graph, k=4)
        candidates = search.run()
        costs = [c.cost for c in candidates]
        assert costs == sorted(costs)

    def test_candidates_are_distinct(self):
        graph = chain_graph()
        candidates = BushySearch(graph, k=4).run()
        signatures = [c.signature for c in candidates]
        assert len(signatures) == len(set(signatures))

    def test_connected_subsets_of_chain(self):
        # A path of n nodes has n*(n+1)/2 connected subpaths.
        graph = chain_graph()
        subsets = BushySearch(graph).connected_subsets()
        assert len(subsets) == 4 * 5 // 2

    def test_single_join_builds_smaller_side(self):
        relations = [Relation("Small", 100), Relation("Big", 10_000)]
        edges = [JoinEdge("Small", "Big", 1e-4)]
        graph = QueryGraph(relations, edges)
        best = best_bushy_trees(graph, k=1)[0]
        assert isinstance(best, JoinNode)
        assert best.build.relations == frozenset(["Small"])

    def test_search_on_generated_query_is_feasible(self):
        generator = QueryGenerator(RandomStreams(5))
        graph = generator.generate(0)
        trees = best_bushy_trees(graph, k=2)
        assert len(trees) == 2
        for tree in trees:
            validate_tree(tree, graph)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            BushySearch(chain_graph(), k=0)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_search_valid_on_random_queries(self, seed):
        from repro.query import QueryGeneratorConfig
        generator = QueryGenerator(
            RandomStreams(seed),
            QueryGeneratorConfig(relations_per_query=6, scale=0.01),
        )
        graph = generator.generate(0)
        candidates = BushySearch(graph, k=2).run()
        assert 1 <= len(candidates) <= 2
        for candidate in candidates:
            validate_tree(candidate.tree, graph)
            assert candidate.cost > 0

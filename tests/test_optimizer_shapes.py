"""Tests for the join-tree shape constructors (Section 2.2's taxonomy)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Relation
from repro.engine import QueryExecutor
from repro.optimizer import (
    CardinalityEstimator,
    connected_orders,
    is_left_deep,
    is_right_deep,
    is_zigzag,
    left_deep_tree,
    macro_expand,
    right_deep_tree,
    segmented_right_deep_tree,
    validate_tree,
    zigzag_tree,
)
from repro.query import GraphError, JoinEdge, QueryGraph


def chain_graph(n=5, card=1000):
    relations = [Relation(f"R{i}", card) for i in range(n)]
    edges = [JoinEdge(f"R{i}", f"R{i + 1}", 1.0 / card) for i in range(n - 1)]
    return QueryGraph(relations, edges)


ORDER = ["R0", "R1", "R2", "R3", "R4"]


class TestShapeConstructors:
    def test_left_deep(self):
        graph = chain_graph()
        tree = left_deep_tree(graph, ORDER)
        validate_tree(tree, graph)
        assert is_left_deep(tree)
        assert not is_right_deep(tree)

    def test_right_deep(self):
        graph = chain_graph()
        tree = right_deep_tree(graph, ORDER)
        validate_tree(tree, graph)
        assert is_right_deep(tree)
        assert not is_left_deep(tree)

    def test_right_deep_is_one_pipeline_chain(self):
        """Right-deep = one maximal probe chain driven by the last relation."""
        graph = chain_graph()
        tree = right_deep_tree(graph, ORDER)
        ops = macro_expand(tree, CardinalityEstimator(graph))
        longest = max(ops.chains, key=len)
        # scan + (n-1) probes.
        assert len(longest) == 5

    def test_left_deep_has_no_long_chains(self):
        graph = chain_graph()
        tree = left_deep_tree(graph, ORDER)
        ops = macro_expand(tree, CardinalityEstimator(graph))
        # Every chain is at most scan->probe->build.
        assert max(len(c) for c in ops.chains) <= 3

    def test_zigzag_default_alternates(self):
        graph = chain_graph()
        tree = zigzag_tree(graph, ORDER)
        validate_tree(tree, graph)
        assert is_zigzag(tree)

    def test_zigzag_custom_pattern(self):
        graph = chain_graph()
        all_newcomer = zigzag_tree(graph, ORDER, pattern=[True] * 4)
        assert is_right_deep(all_newcomer)
        all_composite = zigzag_tree(graph, ORDER, pattern=[False] * 4)
        assert is_left_deep(all_composite)

    def test_zigzag_pattern_length_checked(self):
        graph = chain_graph()
        with pytest.raises(ValueError):
            zigzag_tree(graph, ORDER, pattern=[True])

    def test_segmented_right_deep(self):
        graph = chain_graph()
        tree = segmented_right_deep_tree(graph, ORDER, segment_size=2)
        validate_tree(tree, graph)
        ops = macro_expand(tree, CardinalityEstimator(graph))
        # Segmenting bounds chain length below the full right-deep chain.
        full = macro_expand(right_deep_tree(graph, ORDER),
                            CardinalityEstimator(graph))
        assert max(len(c) for c in ops.chains) < max(len(c) for c in full.chains)

    def test_segment_size_validated(self):
        with pytest.raises(ValueError):
            segmented_right_deep_tree(chain_graph(), ORDER, segment_size=1)

    def test_cross_product_order_rejected(self):
        graph = chain_graph()
        with pytest.raises(GraphError):
            left_deep_tree(graph, ["R0", "R2", "R1", "R3", "R4"])

    def test_incomplete_order_rejected(self):
        graph = chain_graph()
        with pytest.raises(GraphError):
            left_deep_tree(graph, ["R0", "R1"])


class TestConnectedOrders:
    def test_chain_orders_counted(self):
        # A path of n nodes has 2^(n-1) connected enumerations.
        graph = chain_graph(4)
        orders = connected_orders(graph)
        assert len(orders) == 8

    def test_every_order_is_valid(self):
        graph = chain_graph(5)
        for order in connected_orders(graph, limit=50):
            tree = right_deep_tree(graph, order)
            validate_tree(tree, graph)

    def test_limit_respected(self):
        graph = chain_graph(6)
        assert len(connected_orders(graph, limit=5)) == 5


class TestShapesExecute:
    """All shapes must run through the engine with identical results."""

    @pytest.mark.parametrize("builder", [
        left_deep_tree,
        right_deep_tree,
        zigzag_tree,
    ])
    def test_shape_executes_and_conserves(self, builder):
        from repro.optimizer import compile_plan
        from repro.sim import MachineConfig
        graph = chain_graph(4, card=2000)
        order = ["R0", "R1", "R2", "R3"]
        tree = builder(graph, order)
        config = MachineConfig(nodes=1, processors_per_node=4)
        plan = compile_plan(graph, tree, config, label=builder.__name__)
        result = QueryExecutor(plan, config, strategy="DP").run()
        # Final cardinality is shape-independent: card * (sel*card)^(n-1).
        assert result.metrics.result_tuples == pytest.approx(2000, rel=0.05)

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_property_shapes_agree_on_cardinality(self, seed):
        import random
        rng = random.Random(seed)
        graph = chain_graph(4, card=rng.randint(500, 3000))
        order = ["R0", "R1", "R2", "R3"]
        estimator = CardinalityEstimator(graph)
        cards = {
            builder.__name__: estimator.cardinality(builder(graph, order))
            for builder in (left_deep_tree, right_deep_tree, zigzag_tree)
        }
        values = list(cards.values())
        assert all(v == pytest.approx(values[0]) for v in values)

"""Elastic cluster: membership, autoscaler timing, rebalance accounting.

The contracts under test:

* :class:`~repro.cluster.membership.ClusterMembership` — prefix-shaped
  join/drain/leave transitions and their error surface;
* :class:`~repro.cluster.spec.ClusterSpec` — timeline validation,
  reachable sizes, serde identity (including the shipped example);
* the autoscaler's cooldown is *boundary inclusive*: a decision exactly
  ``cooldown`` after the previous one is allowed;
* scale-in drains: in-flight queries that span a draining node finish
  before the node leaves;
* byte conservation: the bytes that cross the interconnect during a
  rebalance equal the partition bytes the placement diff moves — never
  a full re-send;
* the façade/CLI surface: elastic runs end-to-end from a scenario file,
  ``record=`` takes a ``pathlib.Path``, ``--json`` emits the lossless
  :class:`~repro.api.facade.RunResult` document.
"""

import json
import pathlib

import pytest

from repro.api import ScenarioSpec, run
from repro.api.cli import main as cli_main
from repro.api.serde import SpecError, decode, encode
from repro.api.spec import PlanSpec
from repro.catalog.partitioning import place_relation, rebalance_moves
from repro.catalog.relation import Relation
from repro.cluster import (AutoscalerSpec, ClusterEventSpec, ClusterMembership,
                           ClusterSpec, Rebalancer)
from repro.cluster.runtime import ElasticCluster
from repro.serving.admission import AdmissionPolicy
from repro.serving.arrivals import ArrivalSpec
from repro.serving.driver import WorkloadSpec
from repro.serving.substrate import SharedSubstrate
from repro.serving.trace import (NodeDraining, NodeJoined, NodeLeft,
                                 QueryFinished, QueryStarted,
                                 RebalanceCompleted, read_events)
from repro.sim.machine import MachineConfig


# ---------------------------------------------------------------------------
# membership


def test_membership_join_activates_next_prefix_ids():
    m = ClusterMembership(MachineConfig(nodes=6), initial=2)
    assert m.planning_nodes() == (0, 1)
    assert m.join(3) == (2, 3, 4)
    assert m.member_count == 5
    assert m.planning_count == 5
    assert m.is_member(4) and not m.is_member(5)


def test_membership_drain_shrinks_planning_before_membership():
    m = ClusterMembership(MachineConfig(nodes=4), initial=4)
    assert m.begin_drain(2) == (2, 3)
    assert m.planning_count == 2
    assert m.member_count == 4          # still members: finishing work
    assert m.is_draining(3) and m.is_draining(2) and not m.is_draining(1)
    assert m.complete_drain(2) == (2, 3)
    assert m.member_count == 2
    assert m.draining_count == 0


def test_membership_transition_errors():
    m = ClusterMembership(MachineConfig(nodes=3), initial=2)
    with pytest.raises(ValueError):
        m.join(2)                        # would exceed the machine
    with pytest.raises(ValueError):
        m.begin_drain(2)                 # at least one node must remain
    m.begin_drain(1)
    with pytest.raises(RuntimeError):
        m.join(1)                        # no joins mid-drain
    with pytest.raises(ValueError):
        m.complete_drain(2)              # only one node draining


def test_membership_version_bumps_on_every_transition():
    m = ClusterMembership(MachineConfig(nodes=4), initial=1)
    versions = [m.version]
    m.join(2)
    versions.append(m.version)
    m.begin_drain(1)
    versions.append(m.version)
    m.complete_drain(1)
    versions.append(m.version)
    assert versions == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# spec validation and derived shape


def test_cluster_spec_static_by_default():
    spec = ClusterSpec()
    assert spec.static and not spec.elastic
    assert spec.active_at_start == spec.machines.nodes
    assert spec.reachable_sizes() == (spec.machines.nodes,)
    assert spec.machines_at(spec.machines.nodes) is spec.machines


def test_cluster_spec_partial_initial_set_is_elastic():
    spec = ClusterSpec(machines=MachineConfig(nodes=4), initial_nodes=2)
    assert spec.elastic
    assert spec.active_at_start == 2


def test_cluster_timeline_orders_by_time_then_declaration():
    spec = ClusterSpec(
        machines=MachineConfig(nodes=8),
        initial_nodes=2,
        events=(
            ClusterEventSpec(at=2.0, action="leave", nodes=1),
            ClusterEventSpec(at=1.0, action="join", nodes=2),
            ClusterEventSpec(at=1.0, action="join", nodes=1),
        ),
    )
    assert [(e.at, e.action, e.nodes) for e in spec.timeline()] == [
        (1.0, "join", 2), (1.0, "join", 1), (2.0, "leave", 1),
    ]
    assert spec.size_bounds() == (2, 5)
    assert spec.reachable_sizes() == (2, 3, 4, 5)


def test_cluster_timeline_out_of_bounds_rejected():
    with pytest.raises(ValueError, match="timeline"):
        ClusterSpec(
            machines=MachineConfig(nodes=2),
            events=(ClusterEventSpec(at=1.0, action="join", nodes=1),),
        )
    with pytest.raises(ValueError, match="timeline"):
        ClusterSpec(
            machines=MachineConfig(nodes=2),
            initial_nodes=1,
            events=(ClusterEventSpec(at=1.0, action="leave", nodes=1),),
        )


def test_autoscaler_bounds_checked_against_machine():
    with pytest.raises(ValueError, match="min_nodes"):
        ClusterSpec(machines=MachineConfig(nodes=2),
                    autoscaler=AutoscalerSpec(min_nodes=3))
    with pytest.raises(ValueError, match="max_nodes"):
        ClusterSpec(machines=MachineConfig(nodes=2),
                    autoscaler=AutoscalerSpec(max_nodes=4))
    with pytest.raises(ValueError, match="scale_in_utilization"):
        AutoscalerSpec(target_utilization=0.5, scale_in_utilization=0.5)


def test_single_mode_rejects_elastic_cluster():
    with pytest.raises(ValueError, match="single"):
        ScenarioSpec(
            mode="single",
            cluster=ClusterSpec(machines=MachineConfig(nodes=2),
                                initial_nodes=1),
        )


# ---------------------------------------------------------------------------
# serde: identity and indexed error paths


def test_cluster_spec_round_trips_through_codec():
    spec = ClusterSpec(
        machines=MachineConfig(nodes=4, processors_per_node=2),
        initial_nodes=2,
        events=(ClusterEventSpec(at=0.5, action="join", nodes=2),
                ClusterEventSpec(at=2.0, action="leave", nodes=1)),
        autoscaler=AutoscalerSpec(target_utilization=0.9, cooldown=0.5,
                                  max_nodes=4),
    )
    assert decode(ClusterSpec, encode(spec), path="$") == spec


def test_example_elastic_surge_is_canonical_and_elastic():
    text = pathlib.Path("examples/scenarios/elastic_surge.json").read_text()
    spec = ScenarioSpec.from_json(text)
    assert spec.to_json() == text        # serialization fixed point
    assert spec.cluster.elastic
    assert spec.cluster.autoscaler is not None
    assert spec.cluster.active_at_start < spec.cluster.machines.nodes


def test_spec_error_path_includes_tuple_index():
    payload = {"cluster": {"events": [
        {"at": 0.0, "action": "join", "nodes": 1},
        {"at": 1.0, "action": "explode", "nodes": 1},
    ]}}
    with pytest.raises(SpecError, match=r"\$\.cluster\.events\[1\]"):
        ScenarioSpec.from_dict(payload)


def test_spec_error_path_indexes_unknown_element_keys():
    payload = {"cluster": {"events": [{"at": 0.0, "frobnicate": 1}]}}
    with pytest.raises(SpecError, match=r"\$\.cluster\.events\[0\]"):
        ScenarioSpec.from_dict(payload)


# ---------------------------------------------------------------------------
# autoscaler cooldown: boundary instants are allowed


class _FakeCoordinator:
    """Just enough coordinator for ElasticCluster's control loops."""

    def __init__(self, substrate, demand: int, mpl_cap: int = 4):
        self.substrate = substrate
        self.running = {i: object() for i in range(demand)}
        self.pending = []
        self.workload_done = False
        self._mpl_cap = mpl_cap
        self.change_times = []

    def mpl_cap(self) -> int:
        return self._mpl_cap

    def on_cluster_changed(self) -> None:
        self.change_times.append(self.substrate.env.now)


def _elastic(substrate, spec, demand, mpl_cap=4):
    coordinator = _FakeCoordinator(substrate, demand, mpl_cap)
    # relations=() makes every rebalance instantaneous, so membership
    # changes land exactly at the autoscaler's decision instants.
    return coordinator, ElasticCluster(coordinator, spec, relations=())


def test_autoscaler_cooldown_boundary_instant_allows_decision():
    # interval=0.25, cooldown=0.5: both exact binary floats, so the
    # second decision's tick lands *exactly* cooldown after the first.
    substrate = SharedSubstrate(MachineConfig(nodes=4,
                                              processors_per_node=1))
    spec = ClusterSpec(
        machines=substrate.config, initial_nodes=1,
        autoscaler=AutoscalerSpec(target_utilization=0.75,
                                  scale_in_utilization=0.25,
                                  interval=0.25, cooldown=0.5),
    )
    coordinator, cluster = _elastic(substrate, spec, demand=8)
    substrate.env.run(until=1.6)
    # decisions at t=0.25, then exactly t=0.75 (0.75-0.25 == cooldown:
    # allowed), then t=1.25 — exclusive cooldown would give 0.25/1.0.
    assert coordinator.change_times == [0.25, 0.75, 1.25]
    assert cluster.joins == 3
    assert cluster.membership.planning_count == 4
    assert cluster.peak_nodes == 4


def test_autoscaler_within_cooldown_defers_decision():
    # cooldown=0.75 is three ticks: the tick at 0.5 (0.25 after the
    # first decision) must skip, the tick at 1.0 fires.
    substrate = SharedSubstrate(MachineConfig(nodes=3,
                                              processors_per_node=1))
    spec = ClusterSpec(
        machines=substrate.config, initial_nodes=1,
        autoscaler=AutoscalerSpec(target_utilization=0.75,
                                  scale_in_utilization=0.25,
                                  interval=0.25, cooldown=0.75),
    )
    coordinator, _cluster = _elastic(substrate, spec, demand=8, mpl_cap=3)
    substrate.env.run(until=1.1)
    assert coordinator.change_times == [0.25, 1.0]


def test_autoscaler_scales_in_idle_cluster_to_min_nodes():
    substrate = SharedSubstrate(MachineConfig(nodes=4,
                                              processors_per_node=1))
    spec = ClusterSpec(
        machines=substrate.config, initial_nodes=4,
        autoscaler=AutoscalerSpec(target_utilization=0.75,
                                  scale_in_utilization=0.25,
                                  interval=0.25, cooldown=0.5,
                                  min_nodes=2),
    )
    coordinator, cluster = _elastic(substrate, spec, demand=0)
    substrate.env.run(until=1.6)
    # Scale-in notifies twice per transition (drain begins: planning
    # shrinks; drain completes: the node leaves) — instantaneous here,
    # so both land at the decision instant.  Cooldown is again boundary
    # inclusive: 0.75 - 0.25 == cooldown.
    assert coordinator.change_times == [0.25, 0.25, 0.75, 0.75]
    assert cluster.leaves == 2
    assert cluster.membership.planning_count == 2
    assert cluster.low_nodes == 2


def test_autoscaler_stops_when_workload_done():
    substrate = SharedSubstrate(MachineConfig(nodes=4,
                                              processors_per_node=1))
    spec = ClusterSpec(
        machines=substrate.config, initial_nodes=1,
        autoscaler=AutoscalerSpec(interval=0.25),
    )
    coordinator, cluster = _elastic(substrate, spec, demand=8)
    coordinator.workload_done = True
    substrate.env.run(until=2.0)
    assert coordinator.change_times == []
    assert cluster.joins == 0


# ---------------------------------------------------------------------------
# rebalance: minimal movement and byte conservation


def test_rebalance_moves_ship_only_share_deltas():
    relation = Relation("R", cardinality=9000, tuple_size=100)
    old = place_relation(relation, (0, 1), disks_per_node=2)
    new = place_relation(relation, (0, 1, 2), disks_per_node=2)
    moves = rebalance_moves(old, new)
    assert all(move.dst_node == 2 for move in moves)   # only the joiner fills
    shipped = sum(move.tuples for move in moves)
    # Exactly the joiner's new share travels — never a full re-send.
    assert shipped == new.tuples_per_node[new.home.index(2)]
    assert shipped < relation.cardinality
    assert sum(move.nbytes for move in moves) == shipped * relation.tuple_size


def test_rebalancer_bytes_shipped_equals_partition_bytes_moved():
    substrate = SharedSubstrate(MachineConfig(nodes=4,
                                              processors_per_node=1))
    relations = (Relation("R", cardinality=8000, tuple_size=100),
                 Relation("S", cardinality=3000, tuple_size=208))
    rebalancer = Rebalancer(substrate, relations)
    moves = rebalancer.plan_moves((0, 1), (0, 1, 2, 3))
    assert moves
    substrate.env.process(rebalancer.execute(moves), name="rebalance")
    substrate.env.run()
    expected = sum(move.nbytes for move in moves)
    assert rebalancer.bytes_shipped == expected        # crossed the overlay
    assert rebalancer.total_bytes == expected          # and was accounted
    assert rebalancer.total_moves == len(moves)
    assert rebalancer.rebalances == 1


def test_rebalance_round_trip_is_conservative():
    # Growing 2->4 then shrinking 4->2 moves the same bytes each way.
    relation = Relation("R", cardinality=10_000, tuple_size=96)
    two = place_relation(relation, (0, 1), disks_per_node=2)
    four = place_relation(relation, (0, 1, 2, 3), disks_per_node=2)
    out = sum(m.nbytes for m in rebalance_moves(two, four))
    back = sum(m.nbytes for m in rebalance_moves(four, two))
    assert out == back > 0


# ---------------------------------------------------------------------------
# end-to-end: timeline scenario through the façade


def _timeline_scenario(**cluster_kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        cluster=ClusterSpec(
            machines=MachineConfig(nodes=2, processors_per_node=2),
            **cluster_kwargs,
        ),
        plans=PlanSpec(kind="pipeline_chain", base_tuples=2000,
                       chain_joins=2),
        workload=WorkloadSpec(
            queries=4,
            arrival=ArrivalSpec(kind="poisson", rate=50.0),
            policy=AdmissionPolicy(max_multiprogramming=4),
            seed=7,
        ),
    )


def test_scale_in_waits_for_queries_spanning_the_draining_node(tmp_path):
    scenario = _timeline_scenario(
        events=(ClusterEventSpec(at=0.2, action="leave", nodes=1),),
    )
    record = tmp_path / "drain.jsonl"      # pathlib.Path accepted as-is
    result = run(scenario, record=record)
    events = read_events(str(record))
    draining = [e for e in events if isinstance(e, NodeDraining)]
    left = [e for e in events if isinstance(e, NodeLeft)]
    assert [e.node_id for e in draining] == [1]
    assert [e.node_id for e in left] == [1]
    assert left[0].time > draining[0].time
    # Every query started before the drain was planned across both
    # nodes; the node must not leave until each of them has finished.
    started_before = {
        e.query_id for e in events
        if isinstance(e, QueryStarted) and e.time <= draining[0].time
    }
    assert started_before                  # the drain found work in flight
    finishes = {e.query_id: e.time for e in events
                if isinstance(e, QueryFinished)}
    assert left[0].time >= max(finishes[q] for q in started_before)
    metrics = result.metrics
    assert metrics.completed == 4
    assert metrics.node_leaves == 1
    assert metrics.low_nodes == 1


def test_rebalance_bytes_in_metrics_match_trace_and_moves(tmp_path):
    scenario = _timeline_scenario(
        initial_nodes=1,
        events=(ClusterEventSpec(at=0.1, action="join", nodes=1),),
    )
    record = tmp_path / "join.jsonl"
    result = run(scenario, record=record)
    metrics = result.metrics
    assert metrics.node_joins == 1
    assert metrics.rebalances == 1
    assert metrics.rebalance_bytes > 0
    rebalances = [e for e in read_events(str(record))
                  if isinstance(e, RebalanceCompleted)]
    assert sum(e.bytes_moved for e in rebalances) == metrics.rebalance_bytes
    joined = [e for e in read_events(str(record))
              if isinstance(e, NodeJoined)]
    assert [e.node_id for e in joined] == [1]
    cluster = metrics.cluster_summary()
    assert cluster is not None
    assert cluster["load_gained_processors"] == 2
    assert cluster["rebalance_bytes"] == metrics.rebalance_bytes


def test_static_cluster_digest_has_no_cluster_section():
    scenario = _timeline_scenario()
    result = run(scenario)
    assert result.metrics.cluster_summary() is None
    assert "cluster" not in result.metrics.summary()


def test_explicit_plans_rejected_for_elastic_clusters():
    scenario = _timeline_scenario(initial_nodes=1)
    with pytest.raises(ValueError, match="plan bank"):
        run(scenario, plans=(object(),))


# ---------------------------------------------------------------------------
# RunResult JSON and the CLI --json surface


def test_run_result_to_json_round_trips_the_scenario(tmp_path):
    scenario = _timeline_scenario(
        events=(ClusterEventSpec(at=0.2, action="leave", nodes=1),),
    )
    result = run(scenario)
    document = json.loads(result.to_json())
    assert ScenarioSpec.from_dict(document["scenario"]) == scenario
    workload = document["workload"]
    assert workload["metrics"]["completed"] == 4
    assert workload["metrics"]["cluster"]["node_leaves"] == 1


def test_cli_json_output_writes_lossless_document(tmp_path, capsys):
    scenario_path = tmp_path / "scenario.json"
    scenario = _timeline_scenario(
        initial_nodes=1,
        events=(ClusterEventSpec(at=0.1, action="join", nodes=1),),
    )
    scenario_path.write_text(scenario.to_json())
    out_path = tmp_path / "result.json"
    assert cli_main([str(scenario_path), "--json", str(out_path)]) == 0
    human = capsys.readouterr().out
    assert "cluster: +1/-0 nodes" in human
    document = json.loads(out_path.read_text())
    assert ScenarioSpec.from_dict(document["scenario"]) == scenario
    assert document["workload"]["metrics"]["cluster"]["node_joins"] == 1


def test_cli_json_dash_prints_document_only(tmp_path, capsys):
    scenario_path = tmp_path / "scenario.json"
    scenario_path.write_text(_timeline_scenario().to_json())
    assert cli_main([str(scenario_path), "--json", "-"]) == 0
    out = capsys.readouterr().out
    document = json.loads(out)             # the whole stdout is the JSON
    assert document["workload"]["metrics"]["completed"] == 4

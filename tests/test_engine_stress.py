"""Randomized end-to-end stress tests: random plans through the engine.

These are the repository's strongest property tests: arbitrary (small)
queries, shapes, machine configurations, skew and engine knobs must all
execute to completion with conserved cardinalities, a valid termination
order, and deterministic results.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import run_query
from repro.catalog import SkewSpec
from repro.engine import ExecutionParams, QueryExecutor
from repro.optimizer import best_bushy_trees, compile_plan
from repro.query import QueryGenerator, QueryGeneratorConfig
from repro.sim import MachineConfig, RandomStreams


def random_plan(seed: int, relations: int, config: MachineConfig):
    generator = QueryGenerator(
        RandomStreams(seed),
        QueryGeneratorConfig(relations_per_query=relations, scale=0.002),
    )
    graph = generator.generate(0)
    tree = best_bushy_trees(graph, k=1)[0]
    return compile_plan(graph, tree, config, label=f"stress-{seed}")


@given(
    seed=st.integers(0, 1000),
    relations=st.integers(min_value=2, max_value=5),
    nodes=st.integers(min_value=1, max_value=3),
    procs=st.integers(min_value=1, max_value=4),
    theta=st.sampled_from([0.0, 0.5, 1.0]),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_random_plans_complete_and_conserve(seed, relations, nodes,
                                                     procs, theta):
    config = MachineConfig(nodes=nodes, processors_per_node=procs)
    plan = random_plan(seed, relations, config)
    params = ExecutionParams(skew=SkewSpec.uniform_redistribution(theta),
                             seed=seed)
    result = QueryExecutor(plan, config, strategy="DP", params=params).run()
    # Completion with every operator terminated in schedule order.
    assert len(result.metrics.op_end_times) == len(plan.operators)
    order = sorted(result.metrics.op_end_times,
                   key=result.metrics.op_end_times.get)
    assert plan.schedule.is_consistent_linearization(order)
    # Conservation: base tuples scanned exactly once; results near the
    # analytic cardinality (per-thread fractional carries allow small
    # drift, amplified by downstream fanouts).
    expected_scan = sum(r.cardinality for r in plan.graph.relations.values())
    assert result.metrics.tuples_scanned == expected_scan
    root = plan.operators.op(plan.operators.root_id)
    if root.output_cardinality >= 100:
        assert result.metrics.result_tuples == pytest.approx(
            root.output_cardinality, rel=0.25
        )


@given(
    seed=st.integers(0, 200),
    strategy=st.sampled_from(["DP", "FP"]),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_strategies_agree_on_results(seed, strategy):
    config = MachineConfig(nodes=2, processors_per_node=2)
    plan = random_plan(seed, 4, config)
    result = QueryExecutor(plan, config, strategy=strategy).run()
    baseline = QueryExecutor(plan, config, strategy="DP").run()
    root = plan.operators.op(plan.operators.root_id)
    if root.output_cardinality >= 100:
        assert result.metrics.result_tuples == pytest.approx(
            baseline.metrics.result_tuples, rel=0.1
        )


@given(
    batch=st.sampled_from([16, 64, 256]),
    capacity=st.sampled_from([4, 16, 64]),
    window=st.sampled_from([1, 4]),
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_engine_knobs_never_break_conservation(batch, capacity,
                                                        window):
    config = MachineConfig(nodes=2, processors_per_node=2)
    plan = random_plan(7, 3, config)
    params = ExecutionParams(batch_size=batch, queue_capacity=capacity,
                             credit_window=window)
    result = QueryExecutor(plan, config, strategy="DP", params=params).run()
    expected_scan = sum(r.cardinality for r in plan.graph.relations.values())
    assert result.metrics.tuples_scanned == expected_scan


def test_run_query_convenience_wrapper():
    config = MachineConfig(nodes=1, processors_per_node=2)
    plan = random_plan(3, 3, config)
    result = run_query(plan, config, strategy="DP")
    assert result.response_time > 0
    assert result.strategy == "DP"

"""Property and regression tests for the multi-query serving layer.

The invariants under concurrency:

* **per-query tuple conservation** — every base tuple of every concurrent
  query is scanned exactly once, and every activation created for a query
  is processed exactly once (no loss, no double execution), even while
  activations migrate between nodes through the steal protocol;
* **steal legality in situ** — every candidate the provider-side
  scheduler offers during a live multi-query run satisfies the paper's
  five conditions at decision time;
* **determinism** — a :class:`WorkloadDriver` run is a pure function of
  its seed: two identical runs produce byte-identical metrics (the
  regression guard for the shared ``(time, priority, sequence)`` event
  heap under the multi-root-process refactor);
* **admission** — the multiprogramming cap is never exceeded and the
  memory gate defers queries that do not fit;
* **latency accounting** — queueing delay + execution time == latency,
  exactly, per query.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Relation, SkewSpec
from repro.engine import ExecutionParams, QueryExecutor
from repro.engine.scheduler import NodeScheduler
from repro.optimizer import BaseNode, JoinNode, compile_plan
from repro.optimizer.operator_tree import OpKind
from repro.query import JoinEdge, QueryGraph
from repro.serving import (
    AdmissionPolicy,
    ArrivalSpec,
    MultiQueryCoordinator,
    WorkloadDriver,
    WorkloadSpec,
)
from repro.sim import MachineConfig
from repro.workloads import pipeline_chain_scenario


def small_join_plan(config, r=600, s=1200, label="serve"):
    """R join S with |result| = |S|, small enough for many concurrent runs."""
    sel = 1.0 / r
    graph = QueryGraph(
        [Relation("R", r), Relation("S", s)], [JoinEdge("R", "S", sel)]
    )
    tree = JoinNode(BaseNode(graph.relation("R")), BaseNode(graph.relation("S")),
                    sel)
    return compile_plan(graph, tree, config, label=label)


def run_workload(plan, config, *, queries=6, strategy="DP", kind="closed",
                 mpl=4, rate=60.0, skew=0.0, seed=0):
    spec = WorkloadSpec(
        queries=queries,
        arrival=(ArrivalSpec(kind="closed", population=mpl) if kind == "closed"
                 else ArrivalSpec(kind=kind, rate=rate)),
        strategy=strategy,
        policy=AdmissionPolicy(max_multiprogramming=mpl),
        seed=seed,
    )
    params = ExecutionParams(
        skew=(SkewSpec.uniform_redistribution(skew) if skew > 0
              else SkewSpec.none()),
        seed=seed,
    )
    driver = WorkloadDriver(plan, config, spec, params)
    coordinator = driver.build_coordinator()
    metrics = coordinator.run()
    return coordinator, metrics


# ---------------------------------------------------------------------------
# Conservation and no-double-execution under concurrency
# ---------------------------------------------------------------------------

class TestMultiQueryConservation:
    @given(
        seed=st.integers(0, 200),
        strategy=st.sampled_from(["DP", "FP"]),
        kind=st.sampled_from(["closed", "poisson", "bursty"]),
        mpl=st.integers(min_value=1, max_value=6),
        skew=st.sampled_from([0.0, 0.5, 0.8]),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_every_query_conserves_tuples_and_activations(
            self, seed, strategy, kind, mpl, skew):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        coordinator, metrics = run_workload(
            plan, config, queries=5, strategy=strategy, kind=kind,
            mpl=mpl, skew=skew, seed=seed,
        )
        assert metrics.completed == 5
        expected_scan = sum(r.cardinality for r in plan.graph.relations.values())
        for completion in metrics.completions:
            m = completion.result.metrics
            # Every base tuple scanned exactly once, per query.
            assert m.tuples_scanned == expected_scan
            # Every activation processed exactly once: the processed count
            # equals seeded triggers plus emitted data activations, even
            # when some migrated between nodes via steals.
            assert m.activations_processed == (
                m.trigger_activations + m.data_activations
            )
            # Results are correct per query (|R join S| = |S|).
            assert m.result_tuples == pytest.approx(1200, rel=0.02)

    def test_per_operator_outstanding_drains_to_zero(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        coordinator, metrics = run_workload(plan, config, queries=4, mpl=4)
        for request in metrics.completions:
            pass  # completions hold results; contexts were checked at finish
        assert not coordinator.running and not coordinator.pending


# ---------------------------------------------------------------------------
# Steal legality, validated at decision time inside live runs
# ---------------------------------------------------------------------------

class TestStealLegalityInSitu:
    def test_all_offers_satisfy_the_five_conditions(self, monkeypatch):
        """Wrap the provider-side selection and audit every offer made
        during a skewed multi-query run against the paper's conditions."""
        original = NodeScheduler._best_candidate
        audited = {"offers": 0}

        def checked(self, requester, scope, free_memory, cached):
            candidate = original(self, requester, scope, free_memory, cached)
            if candidate is not None:
                audited["offers"] += 1
                runtime = self.context.ops[candidate.op_id]
                # (iv) probes only; (v) unblocked, unterminated.
                assert runtime.kind is OpKind.PROBE
                assert not runtime.blocked and not runtime.terminated
                # Home membership.
                assert requester in runtime.home
                if scope is not None:
                    assert candidate.op_id == scope
                queue = self.node.queue_sets[candidate.op_id].queues[
                    candidate.queue_index
                ]
                # (ii) enough work; (iii) at most the steal fraction.
                params = self.context.params
                assert len(queue) >= params.min_steal_activations
                assert candidate.steal_count == max(
                    1, int(len(queue) * params.steal_fraction)
                )
                # (i) the requester can store the shipment.
                assert candidate.overhead <= free_memory
            return candidate

        monkeypatch.setattr(NodeScheduler, "_best_candidate", checked)
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config, r=1500, s=3000)
        coordinator, metrics = run_workload(
            plan, config, queries=6, mpl=4, skew=0.8, seed=3,
        )
        assert metrics.completed == 6
        # The skewed run must actually have exercised the protocol.
        assert audited["offers"] > 0


# ---------------------------------------------------------------------------
# Determinism regression (the multi-root-process event-ordering guard)
# ---------------------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("kind", ["closed", "poisson", "bursty"])
    def test_same_seed_byte_identical_metrics(self, kind):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        summaries = []
        for _ in range(2):
            _, metrics = run_workload(
                plan, config, queries=6, kind=kind, mpl=3, skew=0.8, seed=17,
            )
            summaries.append(repr(metrics.summary()))
        assert summaries[0] == summaries[1]

    def test_different_seeds_differ_open_loop(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        _, a = run_workload(plan, config, queries=6, kind="poisson", seed=1)
        _, b = run_workload(plan, config, queries=6, kind="poisson", seed=2)
        assert repr(a.summary()) != repr(b.summary())

    @pytest.mark.parametrize("strategy,nodes,procs", [
        ("DP", 2, 4), ("FP", 2, 4), ("SP", 1, 4),
    ])
    def test_mpl8_pipeline_chain_completes_deterministically(
            self, strategy, nodes, procs):
        """Acceptance: MPL-8 runs of the Section 5.3 pipeline chain
        complete under SP, FP and DP, and are bit-deterministic.  (SP is
        the shared-memory model, hence the single-node configuration.)"""
        plan, config = pipeline_chain_scenario(
            nodes=nodes, processors_per_node=procs, base_tuples=1000,
        )
        summaries = []
        for _ in range(2):
            _, metrics = run_workload(
                plan, config, queries=10, strategy=strategy, mpl=8,
                skew=0.8 if strategy != "SP" else 0.0, seed=8,
            )
            assert metrics.completed == 10
            assert metrics.unfinished == 0
            summaries.append(repr(metrics.summary()))
        assert summaries[0] == summaries[1]


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    @given(mpl=st.integers(min_value=1, max_value=5),
           seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_multiprogramming_cap_never_exceeded(self, mpl, seed):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        coordinator, metrics = run_workload(
            plan, config, queries=8, kind="bursty", rate=200.0,
            mpl=mpl, seed=seed,
        )
        assert metrics.completed == 8
        assert 1 <= coordinator.peak_running <= mpl

    def test_memory_gate_defers_when_tables_do_not_fit(self):
        # Hash tables of ~300 KB/query (150 KB per node) on 400 KB nodes:
        # with a 0.3 headroom a second query's demand exceeds the budget,
        # so the controller serializes admissions even though the MPL cap
        # would allow eight at once.
        config = MachineConfig(nodes=2, processors_per_node=2,
                               memory_per_processor=200 * 1024)
        plan = small_join_plan(config, r=3000, s=3600)
        spec = WorkloadSpec(
            queries=6,
            arrival=ArrivalSpec(kind="poisson", rate=500.0),
            strategy="DP",
            policy=AdmissionPolicy(max_multiprogramming=8,
                                   memory_headroom=0.3),
            seed=5,
        )
        driver = WorkloadDriver(plan, config, spec)
        coordinator = driver.build_coordinator()
        metrics = coordinator.run()
        assert metrics.completed == 6
        assert coordinator.admission.deferrals > 0
        assert coordinator.peak_running < 8

    def test_memory_overcommit_degrades_instead_of_crashing(self):
        # Admission reads *current* free memory, so two queries admitted
        # back-to-back can together out-build the estimate.  The engine
        # must absorb the overcommit (unreserved accounting, recorded in
        # memory_overcommit_bytes), not crash the whole workload with
        # MemoryExhausted.
        config = MachineConfig(nodes=2, processors_per_node=2,
                               memory_per_processor=110 * 1024)
        plan = small_join_plan(config, r=3000, s=3600)
        spec = WorkloadSpec(
            queries=4,
            arrival=ArrivalSpec(kind="poisson", rate=500.0),
            policy=AdmissionPolicy(max_multiprogramming=8,
                                   memory_headroom=0.8),
            seed=5,
        )
        metrics = WorkloadDriver(plan, config, spec).run().metrics
        assert metrics.completed == 4
        overcommitted = sum(
            c.result.metrics.memory_overcommit_bytes
            for c in metrics.completions
        )
        assert overcommitted > 0
        for c in metrics.completions:
            assert c.result.metrics.result_tuples == pytest.approx(
                3600, rel=0.02
            )

    def test_sp_on_multi_node_substrate_rejected_at_submit(self):
        from repro.engine import StrategyError

        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        coordinator = MultiQueryCoordinator(config)
        with pytest.raises(StrategyError):
            coordinator.submit(plan, strategy="SP")

    def test_duplicate_query_id_rejected(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        coordinator = MultiQueryCoordinator(config)
        coordinator.submit(plan, query_id=5)
        with pytest.raises(ValueError):
            coordinator.submit(plan, query_id=5)

    def test_mismatched_hardware_params_rejected_on_shared_substrate(self):
        from repro.serving import SharedSubstrate
        from repro.sim import DiskParams

        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        substrate = SharedSubstrate(config)
        other = ExecutionParams(disk=DiskParams(latency=1e-3))
        with pytest.raises(ValueError):
            QueryExecutor(plan, config, strategy="DP",
                          params=other).launch(substrate=substrate)

    def test_deferrals_counted_per_query_not_per_wakeup(self):
        # Eight queries arrive at once with an MPL cap of 1: each of the
        # seven non-head queries becomes head-of-line and is deferred
        # exactly once, however many times the gate re-evaluates.
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        spec = WorkloadSpec(
            queries=8,
            arrival=ArrivalSpec(kind="poisson", rate=10_000.0),
            policy=AdmissionPolicy(max_multiprogramming=1),
            seed=3,
        )
        driver = WorkloadDriver(plan, config, spec)
        coordinator = driver.build_coordinator()
        metrics = coordinator.run()
        assert metrics.completed == 8
        assert coordinator.admission.deferrals <= 8

    def test_queueing_delay_appears_under_bursts(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        _, metrics = run_workload(
            plan, config, queries=8, kind="bursty", rate=300.0, mpl=2,
            seed=9,
        )
        assert metrics.completed == 8
        assert metrics.max_queueing_delay() > 0.0


# ---------------------------------------------------------------------------
# Queueing-delay / execution-time separation
# ---------------------------------------------------------------------------

class TestLatencyAccounting:
    def test_latency_decomposition_is_exact(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        _, metrics = run_workload(
            plan, config, queries=8, kind="bursty", rate=300.0, mpl=2,
            seed=4,
        )
        for c in metrics.completions:
            assert c.queueing_delay >= 0.0
            assert c.execution_time > 0.0
            assert c.queueing_delay + c.execution_time == pytest.approx(
                c.latency, abs=1e-12
            )
            assert c.result.queueing_delay == pytest.approx(
                c.queueing_delay, abs=1e-12
            )
            assert c.result.metrics.response_time == pytest.approx(
                c.execution_time, abs=1e-12
            )

    def test_single_query_path_reports_zero_queueing(self):
        config = MachineConfig(nodes=1, processors_per_node=2)
        plan = small_join_plan(config)
        result = QueryExecutor(plan, config, strategy="DP").run()
        assert result.queueing_delay == 0.0
        assert result.latency == result.response_time
        assert result.metrics.cpu_contention_time == 0.0


# ---------------------------------------------------------------------------
# Inter-query behaviour
# ---------------------------------------------------------------------------

class TestInterQueryBehaviour:
    def test_concurrent_queries_contend_for_processors(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        plan = small_join_plan(config)
        _, solo = run_workload(plan, config, queries=4, mpl=1, seed=2)
        _, packed = run_workload(plan, config, queries=4, mpl=4, seed=2)
        # Sequential execution has no CPU contention; the packed run must.
        assert solo.total_cpu_contention() == 0.0
        assert packed.total_cpu_contention() > 0.0
        # Sharing the machine stretches each query but shrinks the whole.
        assert packed.mean_execution_time() > solo.mean_execution_time()
        assert packed.makespan < solo.makespan

    def test_dp_throughput_meets_fp_under_skew(self):
        plan, config = pipeline_chain_scenario(
            nodes=2, processors_per_node=4, base_tuples=1500,
        )
        results = {}
        for strategy in ("DP", "FP"):
            _, metrics = run_workload(
                plan, config, queries=8, strategy=strategy, mpl=8,
                skew=0.8, seed=12,
            )
            results[strategy] = metrics
        assert results["DP"].throughput() >= results["FP"].throughput()

    def test_generator_plan_population_mixes_queries(self):
        # Arrival streams can draw from a generated plan population
        # (repro.query.generator), not just canned scenarios.
        from repro.optimizer import best_bushy_trees
        from repro.query import QueryGenerator, QueryGeneratorConfig
        from repro.sim import RandomStreams

        config = MachineConfig(nodes=2, processors_per_node=2)
        generator = QueryGenerator(
            RandomStreams(7),
            QueryGeneratorConfig(relations_per_query=3, scale=0.002),
        )
        plans = []
        for index in range(3):
            graph = generator.generate(index)
            tree = best_bushy_trees(graph, k=1)[0]
            plans.append(compile_plan(graph, tree, config, label=f"g{index}"))
        spec = WorkloadSpec(
            queries=6, arrival=ArrivalSpec(kind="closed", population=3),
            policy=AdmissionPolicy(max_multiprogramming=3), seed=5,
        )
        metrics = WorkloadDriver(plans, config, spec).run().metrics
        assert metrics.completed == 6
        assert {c.plan_label for c in metrics.completions} <= {
            "g0", "g1", "g2"
        }
        assert len({c.plan_label for c in metrics.completions}) >= 2

    def test_mixed_strategy_workload_shares_one_machine(self):
        config = MachineConfig(nodes=1, processors_per_node=4)
        plan = small_join_plan(config)
        coordinator = MultiQueryCoordinator(config)

        def submit_all():
            coordinator.submit(plan, strategy="SP")
            coordinator.submit(plan, strategy="DP")
            coordinator.submit(plan, strategy="FP")
            coordinator.close_arrivals()
            return
            yield  # pragma: no cover - generator marker

        coordinator.env.process(submit_all(), name="mixed-submit")
        metrics = coordinator.run()
        assert metrics.completed == 3
        assert {c.strategy for c in metrics.completions} == {"SP", "DP", "FP"}

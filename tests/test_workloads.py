"""Tests for the workload builder and the canned scenarios."""

import pytest

from repro.optimizer import is_right_deep, validate_tree
from repro.sim import MachineConfig
from repro.workloads import (
    WorkloadConfig,
    build_workload,
    pipeline_chain_scenario,
    two_node_join_scenario,
)
from repro.workloads.plans import _intermediate_bytes, build_query_population


SMALL = WorkloadConfig(queries=3)


class TestWorkloadBuilder:
    def test_plans_per_query(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        workload = build_workload(config, SMALL)
        assert len(workload.plans) == 3 * 2
        assert len(workload.accepted_queries) == 3

    def test_sequential_band_respected(self):
        from repro.optimizer.cost import CostModel
        cost_model = CostModel()
        population = build_query_population(SMALL, cost_model)
        low, high = SMALL.effective_band
        from repro.optimizer.search import BushySearch
        for graph, trees, _ in population.entries:
            for tree in trees:
                validate_tree(tree, graph)
            candidates = BushySearch(graph, cost_model=cost_model, k=2).run()
            for candidate in candidates:
                seq = candidate.cost / cost_model.params.mips
                assert low <= seq <= high

    def test_intermediate_ratio_respected(self):
        population = build_query_population(SMALL)
        for graph, trees, _ in population.entries:
            for tree in trees:
                ratio = _intermediate_bytes(graph, tree) / graph.total_base_bytes()
                assert ratio <= SMALL.max_intermediate_ratio

    def test_deterministic_across_calls(self):
        config = MachineConfig(nodes=2, processors_per_node=2)
        a = build_workload(config, SMALL)
        b = build_workload(config, SMALL)
        assert [p.label for p in a.plans] == [p.label for p in b.plans]

    def test_population_cached_across_machines(self):
        pop1 = build_query_population(SMALL)
        pop2 = build_query_population(SMALL)
        assert pop1 is pop2
        # Different machines share the query population but get their own
        # placements.
        c1 = MachineConfig(nodes=1, processors_per_node=4)
        c2 = MachineConfig(nodes=4, processors_per_node=2)
        w1 = build_workload(c1, SMALL)
        w2 = build_workload(c2, SMALL)
        assert w1.accepted_queries == w2.accepted_queries
        assert w1.plans[0].node_set == (0,)
        assert w2.plans[0].node_set == (0, 1, 2, 3)

    def test_the_two_plans_differ(self):
        from repro.optimizer import tree_signature
        config = MachineConfig(nodes=1, processors_per_node=2)
        workload = build_workload(config, SMALL)
        for i in range(0, len(workload.plans), 2):
            a, b = workload.plans[i], workload.plans[i + 1]
            assert tree_signature(a.join_tree) != tree_signature(b.join_tree)

    def test_invalid_config_detected(self):
        with pytest.raises(RuntimeError):
            build_workload(
                MachineConfig(nodes=1, processors_per_node=2),
                # An impossible band: nothing can be accepted.
                WorkloadConfig(queries=1, band=(1e12, 2e12),
                               max_candidates=20),
            )


class TestScenarios:
    def test_two_node_scenario_structure(self):
        plan, config = two_node_join_scenario()
        assert config.nodes == 2
        assert len(plan.operators.scans()) == 2
        assert len(plan.operators.probes()) == 1

    def test_pipeline_chain_scenario_right_deep(self):
        plan, config = pipeline_chain_scenario(nodes=2, processors_per_node=2,
                                               base_tuples=1000)
        assert is_right_deep(plan.join_tree)

    def test_pipeline_chain_length_parameterized(self):
        plan, _ = pipeline_chain_scenario(nodes=2, processors_per_node=2,
                                          base_tuples=1000, chain_joins=6)
        longest = max(plan.operators.chains, key=len)
        assert len(longest) == 7

    def test_pipeline_chain_rejects_zero_joins(self):
        with pytest.raises(ValueError):
            pipeline_chain_scenario(chain_joins=0)

    def test_pipeline_chain_intermediates_controlled(self):
        plan, _ = pipeline_chain_scenario(nodes=2, processors_per_node=2,
                                          base_tuples=1000)
        for probe in plan.operators.probes():
            assert probe.output_cardinality == pytest.approx(1000, rel=0.01)

"""Synthetic trace generator: determinism, traffic shape, validation.

The generator composes four traffic phenomena — diurnal rate cycles,
flash crowds, heavy-tailed sessions, correlated tenant bursts — into a
single replayable :class:`~repro.serving.trace.Trace`.  These tests pin
the properties downstream code relies on: same spec → identical trace,
arrival times sorted and ids dense, plan indices in range, and the rate
function actually expressing the configured diurnal/flash structure.
"""

import dataclasses

import pytest

from repro.serving import ArrivalSpec, WorkloadDriver, WorkloadSpec
from repro.sim import MachineConfig
from repro.workloads.tracegen import (
    TraceGenSpec,
    generate_trace,
    session_rate_at,
)


def small_spec(**overrides):
    defaults = dict(queries=60, seed=3, base_rate=40.0, tenants=3)
    defaults.update(overrides)
    return TraceGenSpec(**defaults)


class TestDeterminism:
    def test_same_spec_same_trace(self):
        spec = small_spec()
        assert generate_trace(spec, plan_count=3) == \
            generate_trace(spec, plan_count=3)

    def test_seed_changes_trace(self):
        spec = small_spec()
        other = dataclasses.replace(spec, seed=4)
        a = generate_trace(spec, plan_count=3)
        b = generate_trace(other, plan_count=3)
        assert [q.arrival_time for q in a.queries] != \
            [q.arrival_time for q in b.queries]

    def test_params_seeds_unique_per_query(self):
        trace = generate_trace(small_spec(), plan_count=2)
        seeds = [q.params_seed for q in trace.queries]
        assert len(seeds) == len(set(seeds))


class TestTraceShape:
    def test_exact_query_count_sorted_dense_ids(self):
        trace = generate_trace(small_spec(), plan_count=3)
        assert len(trace.queries) == 60
        times = [q.arrival_time for q in trace.queries]
        assert times == sorted(times)
        assert [q.query_id for q in trace.queries] == list(range(60))

    def test_plan_indices_in_range(self):
        for plan_count in (1, 2, 5):
            trace = generate_trace(small_spec(), plan_count=plan_count)
            assert all(0 <= q.plan_index < plan_count
                       for q in trace.queries)

    def test_open_loop_trace_kind(self):
        trace = generate_trace(small_spec(), plan_count=2)
        assert trace.arrival_kind == "trace"
        assert not trace.closed_loop

    def test_sessions_share_plan_via_tenant_affinity(self):
        # Full plan affinity: every query of a tenant uses the tenant's
        # preferred plan, so at most `tenants` distinct indices appear.
        spec = small_spec(plan_affinity=1.0, tenants=2)
        trace = generate_trace(spec, plan_count=5)
        assert len({q.plan_index for q in trace.queries}) <= 2

    def test_service_class_mix(self):
        mixed = generate_trace(small_spec(interactive_fraction=0.5),
                               plan_count=2)
        names = {q.service_class.name if q.service_class else None
                 for q in mixed.queries}
        assert names == {"interactive", "batch"}
        classless = generate_trace(small_spec(interactive_fraction=0.0),
                                   plan_count=2)
        assert all(q.service_class is None for q in classless.queries)

    def test_heavy_tail_produces_multi_query_sessions(self):
        # Pareto session lengths with mean 4: some sessions must batch
        # several back-to-back queries (gaps ~ session_gap, far smaller
        # than the mean inter-session spacing).
        spec = small_spec(queries=120, session_mean_queries=4.0,
                          session_gap=0.001)
        trace = generate_trace(spec, plan_count=1)
        times = [q.arrival_time for q in trace.queries]
        gaps = [b - a for a, b in zip(times, times[1:])]
        tight = sum(1 for g in gaps if g < 0.005)
        assert tight > len(gaps) // 4


class TestRateFunction:
    def test_diurnal_cycle_modulates_rate(self):
        spec = small_spec(diurnal_amplitude=0.8, diurnal_period=10.0,
                          flash_crowds=0)
        peak = session_rate_at(spec, 2.5)    # sin peak at period/4
        trough = session_rate_at(spec, 7.5)  # sin trough at 3*period/4
        assert peak > trough
        assert peak == pytest.approx(
            spec.base_rate / spec.session_mean_queries * 1.8)
        assert trough == pytest.approx(
            spec.base_rate / spec.session_mean_queries * 0.2)

    def test_flash_crowd_window_multiplies_rate(self):
        spec = small_spec(diurnal_amplitude=0.0, diurnal_period=10.0,
                          flash_crowds=1, flash_magnitude=6.0,
                          flash_duration=1.0)
        # One flash centred at half the cycle.
        inside = session_rate_at(spec, 5.0)
        outside = session_rate_at(spec, 1.0)
        assert inside == pytest.approx(outside * 6.0)

    def test_flash_crowd_raises_local_density(self):
        # Short cycle so the flash window (mid-cycle) lands well inside
        # the generated horizon.
        calm = small_spec(queries=100, flash_crowds=0,
                          diurnal_amplitude=0.0, diurnal_period=2.0)
        stormy = dataclasses.replace(calm, flash_crowds=1,
                                     flash_magnitude=8.0,
                                     flash_duration=0.3)
        trace = generate_trace(stormy, plan_count=1)
        horizon = trace.queries[-1].arrival_time
        # Bucket arrivals; the max-density bucket under flash crowds
        # should clearly exceed the uniform expectation.
        buckets = [0] * 10
        for q in trace.queries:
            buckets[min(9, int(q.arrival_time / horizon * 10))] += 1
        assert max(buckets) > 2 * (len(trace.queries) / 10)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("queries", 0),
        ("base_rate", 0.0),
        ("diurnal_amplitude", 1.5),
        ("diurnal_period", 0.0),
        ("flash_crowds", -1),
        ("flash_magnitude", 0.5),
        ("session_mean_queries", 0.5),
        ("session_tail", 1.0),
        ("session_gap", -0.1),
        ("tenants", 0),
        ("plan_affinity", 1.5),
        ("interactive_fraction", -0.1),
        ("strategy", "XX"),
    ])
    def test_rejects_bad_field(self, field, value):
        with pytest.raises(ValueError):
            TraceGenSpec(**{field: value})


class TestReplayIntegration:
    def test_generated_trace_replays_deterministically(self):
        import json

        from repro.optimizer import best_bushy_trees, compile_plan
        from repro.query import QueryGenerator, QueryGeneratorConfig
        from repro.sim import RandomStreams

        config = MachineConfig(nodes=1, processors_per_node=2)
        generator = QueryGenerator(
            RandomStreams(7),
            QueryGeneratorConfig(relations_per_query=3, scale=0.002),
        )
        plans = []
        for index in range(2):
            graph = generator.generate(index)
            tree = best_bushy_trees(graph, k=1)[0]
            plans.append(compile_plan(graph, tree, config,
                                      label=f"g{index}"))
        trace = generate_trace(
            small_spec(queries=8, base_rate=20.0), plan_count=2
        )
        spec = WorkloadSpec(queries=8,
                            arrival=ArrivalSpec(kind="poisson", rate=20.0))
        runs = [
            json.dumps(
                WorkloadDriver(plans, config, spec, trace=trace)
                .run().metrics.summary(),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

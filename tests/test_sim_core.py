"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(1.5)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [1.5, 4.0]
    assert env.now == 4.0


def test_zero_timeout_is_allowed():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_event_wakes_waiter_with_value():
    env = Environment()
    gate = env.event("gate")
    seen = []

    def waiter():
        value = yield gate
        seen.append((env.now, value))

    def trigger():
        yield env.timeout(3)
        gate.succeed("payload")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert seen == [(3.0, "payload")]


def test_waiting_on_already_triggered_event_resumes_immediately():
    env = Environment()
    gate = env.event("gate")
    seen = []

    def trigger():
        yield env.timeout(1)
        gate.succeed(7)

    def late_waiter():
        yield env.timeout(5)
        value = yield gate
        seen.append((env.now, value))

    env.process(trigger())
    env.process(late_waiter())
    env.run()
    assert seen == [(5.0, 7)]


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_process_return_value_propagates_to_parent():
    env = Environment()
    results = []

    def child():
        yield env.timeout(2)
        return 42

    def parent():
        value = yield env.process(child())
        results.append((env.now, value))

    env.process(parent())
    env.run()
    assert results == [(2.0, 42)]


def test_yield_from_composes_subgenerators():
    """Procedure-call suspension: nested work via ``yield from``."""
    env = Environment()
    trace = []

    def inner(label):
        yield env.timeout(1)
        trace.append((label, env.now))
        return label

    def outer():
        a = yield from inner("a")
        b = yield from inner("b")
        trace.append((a + b, env.now))

    env.process(outer())
    env.run()
    assert trace == [("a", 1.0), ("b", 2.0), ("ab", 2.0)]


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def make(label):
        def proc():
            yield env.timeout(1)
            order.append(label)
        return proc

    for label in "abc":
        env.process(make(label)())
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_the_clock():
    env = Environment()

    def proc():
        yield env.timeout(10)

    env.process(proc())
    final = env.run(until=4)
    assert final == 4.0
    assert env.now == 4.0
    # Resuming finishes the run.
    env.run()
    assert env.now == 10.0


def test_yield_none_is_cooperative_yield():
    env = Environment()
    order = []

    def a():
        order.append("a1")
        yield None
        order.append("a2")

    def b():
        order.append("b1")
        yield None
        order.append("b2")

    env.process(a())
    env.process(b())
    env.run()
    assert order == ["a1", "b1", "a2", "b2"]
    assert env.now == 0.0


def test_yielding_garbage_raises():
    env = Environment()

    def proc():
        yield "not an event"

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_all_of_waits_for_every_event():
    env = Environment()
    gates = [env.event(f"g{i}") for i in range(3)]
    seen = []

    def waiter():
        values = yield env.all_of(gates)
        seen.append((env.now, values))

    def trigger():
        for i, gate in enumerate(gates):
            yield env.timeout(1)
            gate.succeed(i)

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert seen == [(3.0, [0, 1, 2])]


def test_all_of_empty_list_fires_immediately():
    env = Environment()
    seen = []

    def waiter():
        values = yield env.all_of([])
        seen.append(values)

    env.process(waiter())
    env.run()
    assert seen == [[]]


def test_any_of_fires_on_first():
    env = Environment()
    fast = env.event("fast")
    slow = env.event("slow")
    seen = []

    def waiter():
        value = yield env.any_of([slow, fast])
        seen.append((env.now, value))

    def trigger():
        yield env.timeout(1)
        fast.succeed("quick")
        yield env.timeout(5)
        slow.succeed("late")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert seen == [(1.0, "quick")]


def test_interrupt_wakes_a_waiting_process():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            caught.append((env.now, intr.cause))

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(2)
        proc.interrupt("wake up")

    env.process(interrupter())
    env.run()
    assert caught == [(2.0, "wake up")]


def test_process_is_alive_until_done():
    env = Environment()

    def proc():
        yield env.timeout(5)

    p = env.process(proc())
    env.run(until=1)
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_peek_reports_next_event_time():
    env = Environment()

    def proc():
        yield env.timeout(7)

    env.process(proc())
    assert env.peek() == 0.0  # process bootstrap event
    env.run(until=1)
    assert env.peek() == 7.0
